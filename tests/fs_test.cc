// Tests for SimpleFs: namespace ops, append/read paths, sync and crash
// semantics, extent allocation and fragmentation, nodiscard behavior.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "block/memory_device.h"
#include "fs/extent_allocator.h"
#include "fs/file.h"
#include "fs/filesystem.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "util/logging.h"
#include "util/random.h"

namespace ptsb::fs {
namespace {

constexpr uint64_t kPage = 4096;

FsOptions SmallFsOptions() {
  FsOptions o;
  o.metadata_pages = 4;
  o.append_alloc_pages = 4;
  o.max_extent_pages = 16;
  return o;
}

class FsTest : public ::testing::Test {
 protected:
  FsTest() : dev_(kPage, 1024), fs_(&dev_, SmallFsOptions()) {}

  std::string ReadAll(File* f) {
    std::string out(f->size(), '\0');
    auto n = f->ReadAt(0, out.size(), out.data());
    PTSB_CHECK_OK(n.status());
    out.resize(*n);
    return out;
  }

  block::MemoryBlockDevice dev_;
  SimpleFs fs_;
};

TEST_F(FsTest, CreateOpenDelete) {
  auto f = fs_.Create("a");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(fs_.Exists("a"));
  EXPECT_TRUE(fs_.Create("a").status().IsInvalidArgument());
  EXPECT_TRUE(fs_.Open("a").ok());
  ASSERT_TRUE(fs_.Delete("a").ok());
  EXPECT_FALSE(fs_.Exists("a"));
  EXPECT_TRUE(fs_.Open("a").status().IsNotFound());
  EXPECT_TRUE(fs_.Delete("a").IsNotFound());
}

TEST_F(FsTest, AppendAndReadBack) {
  File* f = *fs_.Create("f");
  const std::string data = "hello world";
  ASSERT_TRUE(f->Append(data).ok());
  EXPECT_EQ(f->size(), data.size());
  EXPECT_EQ(ReadAll(f), data);
}

TEST_F(FsTest, AppendSpanningPages) {
  File* f = *fs_.Create("f");
  Rng rng(1);
  std::string all;
  // Odd-sized appends crossing page boundaries repeatedly.
  for (int i = 0; i < 50; i++) {
    std::string chunk(rng.UniformRange(1, 3000), static_cast<char>('a' + i % 26));
    all += chunk;
    ASSERT_TRUE(f->Append(chunk).ok());
  }
  EXPECT_EQ(f->size(), all.size());
  EXPECT_EQ(ReadAll(f), all);
  // Random-offset reads.
  for (int i = 0; i < 100; i++) {
    const uint64_t off = rng.Uniform(all.size());
    const uint64_t len = rng.UniformRange(1, 5000);
    std::string out(len, '\0');
    auto n = f->ReadAt(off, len, out.data());
    ASSERT_TRUE(n.ok());
    out.resize(*n);
    EXPECT_EQ(out, all.substr(off, len));
  }
}

TEST_F(FsTest, BulkAppendUsesWholePageFastPath) {
  File* f = *fs_.Create("f");
  std::string big(10 * kPage, 'z');
  ASSERT_TRUE(f->Append(big).ok());
  EXPECT_EQ(f->size(), big.size());
  EXPECT_EQ(f->synced_size(), big.size());  // whole pages write through
  EXPECT_EQ(ReadAll(f), big);
}

TEST_F(FsTest, ReadPastEofIsShort) {
  File* f = *fs_.Create("f");
  ASSERT_TRUE(f->Append("abc").ok());
  char buf[16];
  auto n = f->ReadAt(1, 100, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  auto n2 = f->ReadAt(10, 5, buf);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
}

TEST_F(FsTest, SyncMaterializesTail) {
  File* f = *fs_.Create("f");
  ASSERT_TRUE(f->Append("partial page").ok());
  EXPECT_EQ(f->synced_size(), 0u);
  ASSERT_TRUE(f->Sync().ok());
  EXPECT_EQ(f->synced_size(), f->size());
  EXPECT_GT(dev_.flushes(), 0u);
}

TEST_F(FsTest, CrashDropsUnsyncedTail) {
  File* f = *fs_.Create("f");
  ASSERT_TRUE(f->Append("durable!").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("lost").ok());
  fs_.SimulateCrash();
  EXPECT_EQ(f->size(), 8u);
  EXPECT_EQ(ReadAll(f), "durable!");
  // The file remains usable: append again after "reboot".
  ASSERT_TRUE(f->Append("+more").ok());
  EXPECT_EQ(ReadAll(f), "durable!+more");
}

TEST_F(FsTest, CrashKeepsWholePagesEvenUnsynced) {
  File* f = *fs_.Create("f");
  std::string page(kPage, 'q');
  ASSERT_TRUE(f->Append(page).ok());
  ASSERT_TRUE(f->Append("tail").ok());
  fs_.SimulateCrash();
  EXPECT_EQ(f->size(), kPage);
  EXPECT_EQ(ReadAll(f), page);
}

TEST_F(FsTest, RenameMovesAndReplaces) {
  File* a = *fs_.Create("a");
  ASSERT_TRUE(a->Append("AAA").ok());
  File* b = *fs_.Create("b");
  ASSERT_TRUE(b->Append("BBB").ok());
  ASSERT_TRUE(fs_.Rename("a", "b").ok());
  EXPECT_FALSE(fs_.Exists("a"));
  ASSERT_TRUE(fs_.Exists("b"));
  EXPECT_EQ(ReadAll(*fs_.Open("b")), "AAA");
  EXPECT_TRUE(fs_.Rename("nope", "x").IsNotFound());
}

TEST_F(FsTest, ListByPrefix) {
  ASSERT_TRUE(fs_.Create("sst/000001").ok());
  ASSERT_TRUE(fs_.Create("sst/000002").ok());
  ASSERT_TRUE(fs_.Create("wal/000001").ok());
  EXPECT_EQ(fs_.List("sst/").size(), 2u);
  EXPECT_EQ(fs_.List("wal/").size(), 1u);
  EXPECT_EQ(fs_.List().size(), 3u);
}

TEST_F(FsTest, ExtendAndWriteAt) {
  File* f = *fs_.Create("f");
  ASSERT_TRUE(f->Extend(8 * kPage).ok());
  EXPECT_EQ(f->size(), 8 * kPage);
  std::string block(2 * kPage, 'B');
  ASSERT_TRUE(f->WriteAt(4 * kPage, block).ok());
  std::string out(2 * kPage, '\0');
  auto n = f->ReadAt(4 * kPage, out.size(), out.data());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, block);
}

TEST_F(FsTest, WriteAtRequiresAlignmentAndAllocation) {
  File* f = *fs_.Create("f");
  ASSERT_TRUE(f->Extend(2 * kPage).ok());
  std::string page(kPage, 'x');
  EXPECT_TRUE(f->WriteAt(1, page).IsInvalidArgument());
  EXPECT_TRUE(f->WriteAt(0, "short").IsInvalidArgument());
  EXPECT_TRUE(f->WriteAt(2 * kPage, page).IsInvalidArgument());
  EXPECT_TRUE(f->WriteAt(kPage, page).ok());
}

TEST_F(FsTest, ShrinkToFitReleasesSlack) {
  File* f = *fs_.Create("f");
  // 1.5 pages: completing the first page triggers a 4-page allocation
  // chunk (append_alloc_pages), leaving slack.
  const std::string data(kPage + kPage / 2, 's');
  ASSERT_TRUE(f->Append(data).ok());
  ASSERT_TRUE(f->Sync().ok());
  EXPECT_GE(f->allocated_bytes(), 4 * kPage);  // append_alloc_pages chunk
  ASSERT_TRUE(f->ShrinkToFit().ok());
  EXPECT_EQ(f->allocated_bytes(), 2 * kPage);
  EXPECT_EQ(ReadAll(f), data);
  EXPECT_TRUE(fs_.CheckConsistency().ok());
}

TEST_F(FsTest, DeleteFreesSpace) {
  const uint64_t free0 = fs_.GetStats().free_bytes;
  File* f = *fs_.Create("f");
  ASSERT_TRUE(f->Append(std::string(100 * kPage, 'd')).ok());
  EXPECT_LT(fs_.GetStats().free_bytes, free0);
  ASSERT_TRUE(fs_.Delete("f").ok());
  EXPECT_EQ(fs_.GetStats().free_bytes, free0);
  EXPECT_TRUE(fs_.CheckConsistency().ok());
}

TEST_F(FsTest, OutOfSpaceReported) {
  File* f = *fs_.Create("f");
  // Device is 1024 pages; ask for more.
  Status s = f->Extend(2000 * kPage);
  EXPECT_TRUE(s.IsNoSpace());
  EXPECT_TRUE(fs_.CheckConsistency().ok());
}

TEST_F(FsTest, UtilizationTracksData) {
  const double u0 = fs_.GetStats().Utilization();
  File* f = *fs_.Create("f");
  ASSERT_TRUE(f->Append(std::string(512 * kPage, 'u')).ok());
  const double u1 = fs_.GetStats().Utilization();
  EXPECT_GT(u1, u0 + 0.4);
}

TEST_F(FsTest, FragmentationFromChurn) {
  // Alternating create/delete of differently-sized files fragments the
  // free space; allocation still succeeds by splitting extents.
  Rng rng(3);
  for (int round = 0; round < 20; round++) {
    for (int i = 0; i < 8; i++) {
      File* f = *fs_.Create("f" + std::to_string(i));
      ASSERT_TRUE(
          f->Append(std::string(rng.UniformRange(1, 40) * kPage, 'x')).ok());
    }
    for (int i = 0; i < 8; i += 2) {
      ASSERT_TRUE(fs_.Delete("f" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(fs_.CheckConsistency().ok());
    for (int i = 1; i < 8; i += 2) {
      ASSERT_TRUE(fs_.Delete("f" + std::to_string(i)).ok());
    }
  }
  EXPECT_TRUE(fs_.CheckConsistency().ok());
}

TEST_F(FsTest, InterleavedGrowthScattersExtents) {
  // Two files growing in lockstep interleave their allocation chunks, so
  // each ends up with multiple discontiguous extents — the mechanism that
  // fragments concurrently-written LSM outputs and WAL segments.
  File* a = *fs_.Create("a");
  File* b = *fs_.Create("b");
  for (int i = 0; i < 16; i++) {
    ASSERT_TRUE(a->Append(std::string(4 * kPage, 'a')).ok());
    ASSERT_TRUE(b->Append(std::string(4 * kPage, 'b')).ok());
  }
  EXPECT_GE(a->ExtentCount(), 2u);
  EXPECT_GE(b->ExtentCount(), 2u);
  // Contents must survive the scattering.
  EXPECT_EQ(ReadAll(a), std::string(64 * kPage, 'a'));
  EXPECT_EQ(ReadAll(b), std::string(64 * kPage, 'b'));
}

TEST(FsNodiscardTest, DiscardModeTrimsOnDelete) {
  sim::SimClock clock;
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 8 << 20;
  cfg.geometry.pages_per_block = 64;
  cfg.geometry.hardware_op_frac = 0.2;
  ssd::SsdDevice dev(cfg, &clock);

  for (const bool nodiscard : {true, false}) {
    FsOptions o;
    o.metadata_pages = 4;
    o.nodiscard = nodiscard;
    SimpleFs fs(&dev, o);
    File* f = *fs.Create("f");
    ASSERT_TRUE(f->Append(std::string(100 * 4096, 'x')).ok());
    const uint64_t valid_before = dev.ftl().GetStats().valid_pages;
    ASSERT_TRUE(fs.Delete("f").ok());
    const uint64_t valid_after = dev.ftl().GetStats().valid_pages;
    if (nodiscard) {
      // ext4 nodiscard: the FTL still sees the deleted data as valid
      // (modulo the one metadata page the delete touches).
      EXPECT_GE(valid_after + 1, valid_before);
    } else {
      EXPECT_LE(valid_after + 100, valid_before);
    }
  }
}

TEST(ExtentAllocatorTest, AllocateAndFreeRoundTrip) {
  ExtentAllocator alloc(0, 100);
  auto a = alloc.Allocate(30, 0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(alloc.free_pages(), 70u);
  for (const auto& e : *a) alloc.Free(e);
  EXPECT_EQ(alloc.free_pages(), 100u);
  EXPECT_EQ(alloc.FreeExtentCount(), 1u);  // coalesced back
  EXPECT_TRUE(alloc.CheckConsistency().ok());
}

TEST(ExtentAllocatorTest, NoSpaceLeavesStateUntouched) {
  ExtentAllocator alloc(0, 10);
  EXPECT_TRUE(alloc.Allocate(11, 0).status().IsNoSpace());
  EXPECT_EQ(alloc.free_pages(), 10u);
  EXPECT_TRUE(alloc.Allocate(10, 0).ok());
}

TEST(ExtentAllocatorTest, MaxExtentSplits) {
  ExtentAllocator alloc(0, 100);
  auto a = alloc.Allocate(50, 8);
  ASSERT_TRUE(a.ok());
  uint64_t total = 0;
  for (const auto& e : *a) {
    EXPECT_LE(e.num_pages, 8u);
    total += e.num_pages;
  }
  EXPECT_EQ(total, 50u);
}

TEST(ExtentAllocatorTest, NextFitRotates) {
  ExtentAllocator alloc(0, 100);
  auto a = alloc.Allocate(10, 0);
  auto b = alloc.Allocate(10, 0);
  ASSERT_TRUE(a.ok() && b.ok());
  // Free the first allocation; next-fit should keep moving forward, not
  // immediately reuse the hole at the start.
  for (const auto& e : *a) alloc.Free(e);
  auto c = alloc.Allocate(10, 0);
  ASSERT_TRUE(c.ok());
  EXPECT_GE((*c)[0].first_page, 20u);
  EXPECT_TRUE(alloc.CheckConsistency().ok());
}

TEST(ExtentAllocatorTest, WrapsAroundWhenCursorPassesEnd) {
  ExtentAllocator alloc(0, 100);
  auto a = alloc.Allocate(90, 0);
  ASSERT_TRUE(a.ok());
  for (const auto& e : *a) alloc.Free(e);
  // Cursor is at 90; a 20-page allocation cannot fit in [90,100) alone.
  auto b = alloc.Allocate(20, 0);
  ASSERT_TRUE(b.ok());
  uint64_t total = 0;
  for (const auto& e : *b) total += e.num_pages;
  EXPECT_EQ(total, 20u);
  EXPECT_TRUE(alloc.CheckConsistency().ok());
}

TEST(ExtentAllocatorTest, RandomizedStress) {
  ExtentAllocator alloc(16, 512);
  Rng rng(7);
  std::vector<std::vector<Extent>> live;
  for (int i = 0; i < 2000; i++) {
    if (rng.Bernoulli(0.6) || live.empty()) {
      auto r = alloc.Allocate(rng.UniformRange(1, 32),
                              rng.Bernoulli(0.5) ? 8 : 0);
      if (r.ok()) live.push_back(*r);
    } else {
      const size_t idx = rng.Uniform(live.size());
      for (const auto& e : live[idx]) alloc.Free(e);
      live.erase(live.begin() + static_cast<long>(idx));
    }
    ASSERT_TRUE(alloc.CheckConsistency().ok()) << "iteration " << i;
  }
}

}  // namespace
}  // namespace ptsb::fs
