// End-to-end tests of LsmStore: correctness against a reference model
// through flushes and compactions, recovery, scans, stats, and the level
// structure invariants.
#include <gtest/gtest.h>

#include <string>

#include "block/memory_device.h"
#include "fs/filesystem.h"
#include "lsm/lsm_store.h"
#include "test_support.h"
#include "util/random.h"

namespace ptsb::lsm {
namespace {

LsmOptions TinyOptions() {
  // Tiny sizes so flushes and multi-level compactions happen within a few
  // thousand operations.
  LsmOptions o;
  o.memtable_bytes = 16 << 10;
  o.l0_compaction_trigger = 4;
  o.l0_stall_trigger = 8;
  o.l1_target_bytes = 64 << 10;
  o.level_size_ratio = 4;
  o.sst_target_bytes = 32 << 10;
  o.block_bytes = 1024;
  return o;
}

class LsmStoreTest : public ::testing::Test {
 protected:
  LsmStoreTest() : dev_(4096, 1 << 15), fs_(&dev_, FsOpts()) {}

  static fs::FsOptions FsOpts() {
    fs::FsOptions o;
    o.append_alloc_pages = 8;
    return o;
  }

  block::MemoryBlockDevice dev_;
  fs::SimpleFs fs_;
};

TEST_F(LsmStoreTest, PutGetRoundTrip) {
  auto store = LsmStore::Open(&fs_, TinyOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("hello", "world").ok());
  std::string v;
  ASSERT_TRUE((*store)->Get("hello", &v).ok());
  EXPECT_EQ(v, "world");
  EXPECT_TRUE((*store)->Get("missing", &v).IsNotFound());
  ASSERT_TRUE((*store)->Close().ok());
}

TEST_F(LsmStoreTest, OverwriteReturnsNewest) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(store->Put("k", "v" + std::to_string(i)).ok());
  }
  std::string v;
  ASSERT_TRUE(store->Get("k", &v).ok());
  EXPECT_EQ(v, "v9");
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, DeleteHidesKeyAcrossFlush) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  ASSERT_TRUE(store->Put("k", "v").ok());
  ASSERT_TRUE(store->Flush().ok());  // value now in an SST
  ASSERT_TRUE(store->Delete("k").ok());
  std::string v;
  EXPECT_TRUE(store->Get("k", &v).IsNotFound());
  ASSERT_TRUE(store->Flush().ok());  // tombstone now in an SST too
  EXPECT_TRUE(store->Get("k", &v).IsNotFound());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, FlushCreatesL0AndCompactionsCascade) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  Rng rng(1);
  std::string value(512, 'v');
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(
        store->Put("key" + std::to_string(rng.Uniform(2000)), value).ok());
  }
  ASSERT_TRUE(store->DrainCompactions().ok());
  // With ~1 MiB of live data and a 16 KiB memtable, data must have reached
  // at least L1.
  EXPECT_GE(store->versions().MaxPopulatedLevel(), 1);
  EXPECT_TRUE(store->versions().CheckInvariants().ok());
  const auto stats = store->GetStats();
  EXPECT_GT(stats.flush_bytes_written, 0u);
  EXPECT_GT(stats.compaction_bytes_written, 0u);
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, MatchesReferenceModelThroughCompactions) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  testing::ReferenceModel model;
  Rng rng(7);
  testing::RunRandomOps(store.get(), &model, &rng, 6000, 1500, 300, 0.85);
  testing::VerifyAll(store.get(), model);
  EXPECT_TRUE(store->versions().CheckInvariants().ok());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, ScanReturnsSortedLiveKeys) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  testing::ReferenceModel model;
  Rng rng(9);
  testing::RunRandomOps(store.get(), &model, &rng, 3000, 800, 200, 0.7);
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(testing::CollectRange(store.get(), "", 100000, &got).ok());
  ASSERT_EQ(got.size(), model.size());
  auto expect = model.map().begin();
  for (const auto& [k, v] : got) {
    EXPECT_EQ(k, expect->first);
    EXPECT_EQ(v, expect->second);
    ++expect;
  }
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, ScanRangeAndLimit) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  for (int i = 0; i < 100; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(store->Put(key, "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(testing::CollectRange(store.get(), "k050", 10, &got).ok());
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got.front().first, "k050");
  EXPECT_EQ(got.back().first, "k059");
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, IteratorMergesMemtableAndSstsSkippingTombstones) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  // Older versions + tombstones in SSTs, newer versions in the memtable.
  for (int i = 0; i < 100; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(store->Put(key, "old").ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  for (int i = 0; i < 100; i += 2) {
    char key[16];
    snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(store->Delete(key).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  for (int i = 1; i < 100; i += 4) {
    char key[16];
    snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(store->Put(key, "new").ok());  // stays in the memtable
  }

  auto it = store->NewIterator();
  int seen = 0;
  std::string prev;
  for (it->Seek("k010"); it->Valid(); it->Next()) {
    const std::string key(it->key());
    ASSERT_GE(key, "k010");
    if (!prev.empty()) {
      ASSERT_LT(prev, key);
    }  // strictly ascending, deduped
    const int id = std::stoi(key.substr(1));
    ASSERT_NE(id % 2, 0) << key << " was deleted";
    EXPECT_EQ(it->value(), (id - 1) % 4 == 0 ? "new" : "old");
    prev = key;
    seen++;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(seen, 45);  // odd ids in [11, 99]
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, BatchedWriteAppliesAllEntriesInOrder) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  kv::WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  batch.Put("c", "3");
  ASSERT_TRUE(store->Write(batch).ok());
  std::string v;
  EXPECT_TRUE(store->Get("a", &v).IsNotFound());  // later delete wins
  ASSERT_TRUE(store->Get("b", &v).ok());
  EXPECT_EQ(v, "2");
  ASSERT_TRUE(store->Get("c", &v).ok());
  const auto stats = store->GetStats();
  EXPECT_EQ(stats.user_batches, 1u);
  EXPECT_EQ(stats.user_puts, 3u);
  EXPECT_EQ(stats.user_deletes, 1u);
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, BatchedWalRecordsReplayAfterCrash) {
  auto options = TinyOptions();
  options.wal_sync_every_bytes = 1;  // sync every record
  options.memtable_bytes = 1 << 20;  // keep everything in the WAL
  kv::WriteBatch batch;
  {
    auto store = *LsmStore::Open(&fs_, options);
    for (int i = 0; i < 300; i++) {
      batch.Put("k" + std::to_string(i), "v" + std::to_string(i));
      if (batch.Count() == 32) {
        ASSERT_TRUE(store->Write(batch).ok());
        batch.Clear();
      }
    }
    if (!batch.empty()) {
      ASSERT_TRUE(store->Write(batch).ok());
    }
    // Crash without Close: recovery must replay the multi-entry records.
    fs_.SimulateCrash();
    store.release();  // NOLINT: intentional leak of a "crashed" instance
  }
  auto store = *LsmStore::Open(&fs_, options);
  std::string v;
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(store->Get("k" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, ReopenRecoversFlushedAndWalData) {
  testing::ReferenceModel model;
  {
    auto store = *LsmStore::Open(&fs_, TinyOptions());
    Rng rng(11);
    testing::RunRandomOps(store.get(), &model, &rng, 2000, 500, 300, 0.9);
    ASSERT_TRUE(store->Close().ok());
  }
  {
    auto store = LsmStore::Open(&fs_, TinyOptions());
    ASSERT_TRUE(store.ok());
    testing::VerifyAll(store->get(), model);
    ASSERT_TRUE((*store)->Close().ok());
  }
}

TEST_F(LsmStoreTest, CrashRecoveryKeepsDurablePrefix) {
  // Writes go through the WAL; a crash drops only the unsynced tail. After
  // reopen, every key that was visible before the last full page is intact.
  auto options = TinyOptions();
  options.wal_sync_every_bytes = 1;  // sync on every record
  testing::ReferenceModel model;
  {
    auto store = *LsmStore::Open(&fs_, options);
    Rng rng(13);
    testing::RunRandomOps(store.get(), &model, &rng, 1500, 400, 200, 0.85);
    // No Close: simulate power failure.
    fs_.SimulateCrash();
    // The store object is now abandoned (as a crashed process would be).
    // Prevent its destructor from flushing post-crash state.
    store.release();  // NOLINT: intentional leak of a "crashed" instance
  }
  {
    auto store = LsmStore::Open(&fs_, options);
    ASSERT_TRUE(store.ok());
    testing::VerifyAll(store->get(), model);
    ASSERT_TRUE((*store)->Close().ok());
  }
}

TEST_F(LsmStoreTest, WalDisabledLosesMemtableOnCrashButStaysConsistent) {
  auto options = TinyOptions();
  options.wal_enabled = false;
  {
    auto store = *LsmStore::Open(&fs_, options);
    ASSERT_TRUE(store->Put("a", "1").ok());
    ASSERT_TRUE(store->Flush().ok());
    ASSERT_TRUE(store->Put("b", "2").ok());  // memtable only
    fs_.SimulateCrash();
    store.release();  // NOLINT
  }
  {
    auto store = *LsmStore::Open(&fs_, options);
    std::string v;
    EXPECT_TRUE(store->Get("a", &v).ok());
    EXPECT_TRUE(store->Get("b", &v).IsNotFound());
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST_F(LsmStoreTest, TombstonesDroppedAtBottomLevel) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  std::string value(256, 'v');
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(store->Put("k" + std::to_string(i), value).ok());
  }
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(store->Delete("k" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store->CompactAll().ok());
  // Everything deleted and fully compacted: the tree is empty (tombstones
  // dropped at the bottom).
  EXPECT_EQ(store->versions().TotalEntries(), 0u);
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(testing::CollectRange(store.get(), "", 1000, &got).ok());
  EXPECT_TRUE(got.empty());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, StatsAccounting) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  std::string value(100, 'v');
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i), value).ok());
  }
  std::string v;
  ASSERT_TRUE(store->Get("key5", &v).ok());
  const auto stats = store->GetStats();
  EXPECT_EQ(stats.user_puts, 100u);
  EXPECT_EQ(stats.user_gets, 1u);
  EXPECT_GT(stats.user_bytes_written, 100u * 100);
  EXPECT_GT(stats.wal_bytes_written, stats.user_bytes_written);
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, DiskBytesUsedTracksLiveFiles) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  const uint64_t before = store->DiskBytesUsed();
  std::string value(1000, 'v');
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store->Put("k" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_GT(store->DiskBytesUsed(), before + 100 * 1000);
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, LargeValuesSpanningManyBlocks) {
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  // Values much larger than the 1 KiB block size.
  std::string big(8000, 'B');
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(store->Put("big" + std::to_string(i), big).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  std::string v;
  ASSERT_TRUE(store->Get("big25", &v).ok());
  EXPECT_EQ(v, big);
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(LsmStoreTest, SequentialLoadUsesTrivialMoves) {
  // Sequentially-loaded, non-overlapping SSTs should mostly cascade down
  // by trivial moves, keeping compaction write volume low (this is why the
  // paper's load phase is cheap for RocksDB).
  auto store = *LsmStore::Open(&fs_, TinyOptions());
  std::string value(400, 'v');
  for (int i = 0; i < 3000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i);
    ASSERT_TRUE(store->Put(key, value).ok());
  }
  ASSERT_TRUE(store->DrainCompactions().ok());
  const auto stats = store->GetStats();
  // Rewrite ratio: compaction writes per flushed byte stays well below
  // what random updates would cause.
  EXPECT_LT(static_cast<double>(stats.compaction_bytes_written),
            1.0 * static_cast<double>(stats.flush_bytes_written));
  ASSERT_TRUE(store->Close().ok());
}

// Property sweep over workload shapes: the store must match the reference
// model under every mix.
class LsmPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, int, uint64_t>> {};

TEST_P(LsmPropertyTest, ModelEquivalence) {
  const double put_bias = std::get<0>(GetParam());
  const int value_bytes = std::get<1>(GetParam());
  const uint64_t seed = std::get<2>(GetParam());
  block::MemoryBlockDevice dev(4096, 1 << 15);
  fs::SimpleFs fs(&dev, {});
  auto store = *LsmStore::Open(&fs, TinyOptions());
  testing::ReferenceModel model;
  Rng rng(seed);
  testing::RunRandomOps(store.get(), &model, &rng, 4000, 1000, value_bytes,
                        put_bias);
  testing::VerifyAll(store.get(), model);
  EXPECT_TRUE(store->versions().CheckInvariants().ok());
  ASSERT_TRUE(store->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LsmPropertyTest,
    ::testing::Combine(::testing::Values(0.5, 0.95),
                       ::testing::Values(16, 700),
                       ::testing::Values(101u, 202u)));

}  // namespace
}  // namespace ptsb::lsm
