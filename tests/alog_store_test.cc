// End-to-end tests of AlogStore: correctness against a reference model
// through segment rolls and GC, ordered iteration, recovery (clean reopen
// and crash replay), batch semantics (empty batch, duplicate keys), GC
// space bounds, and tombstone handling across collections.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alog/alog_store.h"
#include "block/memory_device.h"
#include "fs/filesystem.h"
#include "kv/write_batch.h"
#include "test_support.h"
#include "util/random.h"

namespace ptsb::alog {
namespace {

AlogOptions TinyOptions() {
  // Tiny segments so rolls and collections happen within a few hundred
  // operations.
  AlogOptions o;
  o.segment_bytes = 16 << 10;
  o.gc_trigger = 0.5;
  return o;
}

class AlogStoreTest : public ::testing::Test {
 protected:
  AlogStoreTest() : dev_(4096, 1 << 15), fs_(&dev_, FsOpts()) {}

  static fs::FsOptions FsOpts() {
    fs::FsOptions o;
    o.append_alloc_pages = 8;
    return o;
  }

  block::MemoryBlockDevice dev_;
  fs::SimpleFs fs_;
};

TEST_F(AlogStoreTest, PutGetRoundTrip) {
  auto store = AlogStore::Open(&fs_, TinyOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("hello", "world").ok());
  std::string v;
  ASSERT_TRUE((*store)->Get("hello", &v).ok());
  EXPECT_EQ(v, "world");
  EXPECT_TRUE((*store)->Get("missing", &v).IsNotFound());
  ASSERT_TRUE((*store)->Put("empty", "").ok());
  ASSERT_TRUE((*store)->Get("empty", &v).ok());
  EXPECT_EQ(v, "");
  ASSERT_TRUE((*store)->Close().ok());
}

TEST_F(AlogStoreTest, OverwriteReturnsNewestAndDeleteHides) {
  auto store = *AlogStore::Open(&fs_, TinyOptions());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(store->Put("k", "v" + std::to_string(i)).ok());
  }
  std::string v;
  ASSERT_TRUE(store->Get("k", &v).ok());
  EXPECT_EQ(v, "v9");
  ASSERT_TRUE(store->Delete("k").ok());
  EXPECT_TRUE(store->Get("k", &v).IsNotFound());
  // Deleting an absent key is a clean no-op.
  ASSERT_TRUE(store->Delete("never-existed").ok());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(AlogStoreTest, IteratorWalksLiveKeysInOrder) {
  auto store = *AlogStore::Open(&fs_, TinyOptions());
  ASSERT_TRUE(store->Put("b", "2").ok());
  ASSERT_TRUE(store->Put("d", "4").ok());
  ASSERT_TRUE(store->Put("a", "1").ok());
  ASSERT_TRUE(store->Put("c", "3").ok());
  ASSERT_TRUE(store->Delete("c").ok());

  auto it = store->NewIterator();
  std::vector<std::string> keys;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    keys.push_back(std::string(it->key()));
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "d"}));

  it = store->NewIterator();
  it->Seek("b");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "b");
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "d");  // "c" is deleted: skipped
  EXPECT_EQ(it->value(), "4");
  it->Next();
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().ok());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(AlogStoreTest, RandomOpsMatchModelThroughRollsAndGc) {
  auto options = TinyOptions();
  options.gc_trigger = 0.3;  // collect aggressively
  auto store = *AlogStore::Open(&fs_, options);
  testing::ReferenceModel model;
  Rng rng(17);
  testing::RunRandomOps(store.get(), &model, &rng, 5000, 300, 200, 0.7);
  testing::VerifyAll(store.get(), model);

  // Full ordered sweep matches the model exactly (no phantom keys).
  auto it = store->NewIterator();
  auto im = model.map().begin();
  size_t n = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++im, ++n) {
    ASSERT_NE(im, model.map().end());
    EXPECT_EQ(it->key(), im->first);
    EXPECT_EQ(it->value(), im->second);
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(n, model.size());

  // The workload deleted and overwrote enough to have collected something.
  const auto stats = store->GetStats();
  EXPECT_GT(stats.gc_bytes_written, 0u);
  EXPECT_GT(stats.gc_bytes_read, 0u);
  ASSERT_TRUE(store->Close().ok());

  // Clean reopen recovers the identical state.
  auto reopened = *AlogStore::Open(&fs_, options);
  testing::VerifyAll(reopened.get(), model);
  EXPECT_EQ(reopened->LiveKeys(), model.size());
  ASSERT_TRUE(reopened->Close().ok());
}

TEST_F(AlogStoreTest, GcBoundsDiskUsageUnderSustainedUpdates) {
  auto store = *AlogStore::Open(&fs_, TinyOptions());
  const std::string value(200, 'v');
  Rng rng(5);
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        store->Put("k" + std::to_string(rng.Uniform(50)), value).ok());
  }
  // ~630 KB appended over the run against ~11 KB live; without GC the log
  // would keep all of it. With gc_trigger=0.5 the sealed payload stays
  // near 2x live, plus one active segment and allocation slack.
  EXPECT_LT(store->DiskBytesUsed(), 100u << 10) << store->DebugString();
  const auto stats = store->GetStats();
  EXPECT_GT(stats.gc_bytes_written, 0u);
  EXPECT_GE(stats.wal_bytes_written, stats.user_bytes_written);
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(AlogStoreTest, CrashRecoveryKeepsDurablePrefix) {
  auto options = TinyOptions();
  options.sync_every_bytes = 1;  // sync on every record
  testing::ReferenceModel model;
  {
    auto store = *AlogStore::Open(&fs_, options);
    Rng rng(13);
    testing::RunRandomOps(store.get(), &model, &rng, 1500, 400, 200, 0.85);
    // No Close: simulate power failure.
    fs_.SimulateCrash();
    store.release();  // NOLINT: intentional leak of a "crashed" instance
  }
  {
    auto store = AlogStore::Open(&fs_, options);
    ASSERT_TRUE(store.ok());
    testing::VerifyAll(store->get(), model);
    ASSERT_TRUE((*store)->Close().ok());
  }
}

TEST_F(AlogStoreTest, UnsyncedTailIsLostButStoreStaysConsistent) {
  auto options = TinyOptions();
  testing::ReferenceModel model;
  {
    auto store = *AlogStore::Open(&fs_, options);
    ASSERT_TRUE(store->Put("a", "1").ok());
    ASSERT_TRUE(store->Flush().ok());  // durable prefix
    ASSERT_TRUE(store->Put("b", "2").ok());  // buffered tail only
    fs_.SimulateCrash();
    store.release();  // NOLINT
  }
  {
    auto store = *AlogStore::Open(&fs_, options);
    std::string v;
    EXPECT_TRUE(store->Get("a", &v).ok());
    EXPECT_TRUE(store->Get("b", &v).IsNotFound());
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST_F(AlogStoreTest, BatchedRecordsReplayAtomicallyAfterCrash) {
  auto options = TinyOptions();
  options.sync_every_bytes = 1;
  kv::WriteBatch batch;
  {
    auto store = *AlogStore::Open(&fs_, options);
    for (int i = 0; i < 300; i++) {
      batch.Put("k" + std::to_string(i), "v" + std::to_string(i));
      if (batch.Count() == 32) {
        ASSERT_TRUE(store->Write(batch).ok());
        batch.Clear();
      }
    }
    if (!batch.empty()) {
      ASSERT_TRUE(store->Write(batch).ok());
    }
    fs_.SimulateCrash();
    store.release();  // NOLINT: intentional leak of a "crashed" instance
  }
  auto store = *AlogStore::Open(&fs_, options);
  std::string v;
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(store->Get("k" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(AlogStoreTest, EmptyBatchIsANoOp) {
  auto store = *AlogStore::Open(&fs_, TinyOptions());
  ASSERT_TRUE(store->Put("a", "1").ok());
  const auto before = store->GetStats();
  const uint64_t disk_before = store->DiskBytesUsed();
  kv::WriteBatch empty;
  ASSERT_TRUE(store->Write(empty).ok());
  const auto after = store->GetStats();
  EXPECT_EQ(after.user_batches, before.user_batches);
  EXPECT_EQ(after.user_puts, before.user_puts);
  EXPECT_EQ(after.wal_bytes_written, before.wal_bytes_written);
  EXPECT_EQ(store->DiskBytesUsed(), disk_before);
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(AlogStoreTest, DuplicateKeysInOneBatchAreLastEntryWins) {
  auto options = TinyOptions();
  options.sync_every_bytes = 1;
  {
    auto store = *AlogStore::Open(&fs_, options);
    kv::WriteBatch batch;
    batch.Put("a", "first");
    batch.Put("a", "second");
    batch.Put("b", "kept");
    batch.Delete("b");
    batch.Delete("c");
    batch.Put("c", "resurrected");
    ASSERT_TRUE(store->Write(batch).ok());
    std::string v;
    ASSERT_TRUE(store->Get("a", &v).ok());
    EXPECT_EQ(v, "second");
    EXPECT_TRUE(store->Get("b", &v).IsNotFound());
    ASSERT_TRUE(store->Get("c", &v).ok());
    EXPECT_EQ(v, "resurrected");
    fs_.SimulateCrash();
    store.release();  // NOLINT: intentional leak of a "crashed" instance
  }
  // Crash replay of the batch record preserves last-entry-wins.
  auto store = *AlogStore::Open(&fs_, options);
  std::string v;
  ASSERT_TRUE(store->Get("a", &v).ok());
  EXPECT_EQ(v, "second");
  EXPECT_TRUE(store->Get("b", &v).IsNotFound());
  ASSERT_TRUE(store->Get("c", &v).ok());
  EXPECT_EQ(v, "resurrected");
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(AlogStoreTest, GcNeverLosesDurableKeysOnCrash) {
  // GC moves live entries out of the victim segment and then deletes the
  // victim's file. The rewritten data must be synced before the delete:
  // otherwise a crash leaves the GC record in the lost unsynced tail
  // while the durable originals are already gone with the file.
  auto options = TinyOptions();
  options.segment_bytes = 4 << 10;
  options.gc_trigger = 0.4;
  const std::string value(150, 'c');
  // Sweep the crash point across the update phase: the vulnerable window
  // (victim deleted, rewritten record still in the unsynced tail) only
  // spans part of a page, so a single crash point could miss it.
  bool collected = false;
  for (int stop = 10; stop <= 120; stop += 5) {
    const std::string dir = "alog-gcrash" + std::to_string(stop);
    testing::ReferenceModel model;
    {
      auto store = *AlogStore::Open(&fs_, options, dir);
      // Interleave cold keys with hot ones so the early segments hold
      // both; once the hot entries are shadowed those segments are partly
      // dead and GC must rewrite their live cold keys.
      for (int i = 0; i < 20; i++) {
        ASSERT_TRUE(store->Put("cold" + std::to_string(i), value).ok());
        ASSERT_TRUE(store->Put("hot" + std::to_string(i % 5), value).ok());
        model.Put("cold" + std::to_string(i), value);
      }
      ASSERT_TRUE(store->Flush().ok());  // cold keys are durable now
      for (int i = 0; i < stop; i++) {
        ASSERT_TRUE(store->Put("hot" + std::to_string(i % 5), value).ok());
      }
      collected |= store->GetStats().gc_bytes_read > 0;
      fs_.SimulateCrash();
      store.release();  // NOLINT: intentional leak of a "crashed" instance
    }
    auto store = *AlogStore::Open(&fs_, options, dir);
    testing::VerifyAll(store.get(), model);
    ASSERT_TRUE(store->Close().ok());
  }
  // The sweep is only meaningful if live rewrites actually happened.
  EXPECT_TRUE(collected) << "sweep never triggered a live rewrite";
}

TEST_F(AlogStoreTest, DeletedKeysStayDeadThroughGcAndReopen) {
  // A tombstone must keep shadowing an older put even after the segment
  // holding the tombstone is collected (GC rewrites it forward) — the
  // classic log-engine resurrection bug.
  auto options = TinyOptions();
  options.segment_bytes = 4 << 10;
  options.gc_trigger = 0.3;
  auto store = *AlogStore::Open(&fs_, options);
  const std::string value(400, 'v');
  // The victims land in the oldest segments.
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(store->Put("victim" + std::to_string(i), value).ok());
  }
  // Fill several more segments, then delete the victims (tombstones land
  // in much newer segments than the puts).
  Rng rng(29);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        store->Put("fill" + std::to_string(rng.Uniform(40)), value).ok());
  }
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(store->Delete("victim" + std::to_string(i)).ok());
  }
  // Sustained updates force many collections, including of the tombstone
  // segments.
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(
        store->Put("fill" + std::to_string(rng.Uniform(40)), value).ok());
  }
  ASSERT_TRUE(store->SettleBackgroundWork().ok());
  std::string v;
  for (int i = 0; i < 20; i++) {
    EXPECT_TRUE(store->Get("victim" + std::to_string(i), &v).IsNotFound())
        << "victim" << i << " resurrected before reopen\n"
        << store->DebugString();
  }
  ASSERT_TRUE(store->Close().ok());

  auto reopened = *AlogStore::Open(&fs_, options);
  for (int i = 0; i < 20; i++) {
    EXPECT_TRUE(reopened->Get("victim" + std::to_string(i), &v).IsNotFound())
        << "victim" << i << " resurrected after reopen";
  }
  EXPECT_EQ(reopened->LiveKeys(), 40u);
  ASSERT_TRUE(reopened->Close().ok());
}

TEST_F(AlogStoreTest, SegmentCountStaysBoundedAcrossReopens) {
  // Open/close cycles must not leak empty or fully-dead segment files.
  auto options = TinyOptions();
  testing::ReferenceModel model;
  {
    auto store = *AlogStore::Open(&fs_, options);
    Rng rng(31);
    testing::RunRandomOps(store.get(), &model, &rng, 800, 100, 200, 0.8);
    ASSERT_TRUE(store->Close().ok());
  }
  uint64_t prev_count = 0;
  for (int cycle = 0; cycle < 5; cycle++) {
    auto store = *AlogStore::Open(&fs_, options);
    testing::VerifyAll(store.get(), model);
    const uint64_t count = store->SegmentCount();
    if (cycle > 0) {
      EXPECT_EQ(count, prev_count) << "reopen grew the segment set";
    }
    prev_count = count;
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST(AlogSpacePressureTest, GcRunsBeforeTheDeviceFillsEvenWithLazyTrigger) {
  // A lazy dead-ratio trigger on a nearly-full device: dead bytes must be
  // collected under space pressure long before the ratio is reached, or
  // the store runs out of space while holding reclaimable segments.
  block::MemoryBlockDevice dev(4096, 256);  // 1 MiB
  fs::FsOptions fs_options;
  fs_options.append_alloc_pages = 8;  // chunked allocation fits the device
  fs_options.metadata_pages = 16;
  fs::SimpleFs fs(&dev, fs_options);
  AlogOptions options;
  options.segment_bytes = 16 << 10;
  options.gc_trigger = 0.95;  // effectively never by ratio
  auto store = *AlogStore::Open(&fs, options);
  const std::string value(900, 'v');
  Rng rng(3);
  // ~180 KB live, ~2.7 MB appended over the run: without pressure GC this
  // overflows the 1 MiB device long before the 0.95 dead ratio.
  for (int i = 0; i < 3000; i++) {
    const Status s = store->Put("k" + std::to_string(rng.Uniform(200)), value);
    ASSERT_TRUE(s.ok()) << "put " << i << ": " << s.ToString() << "\n"
                        << store->DebugString();
  }
  // ~170 segments were written over the run; pressure GC must have
  // reclaimed all but the ones that fit the device. (Fully-dead segments
  // are deleted without rewriting anything, so gc_bytes_written may stay
  // 0 here — the ratio-trigger test covers live rewrites.)
  EXPECT_LT(store->SegmentCount(), 64u) << store->DebugString();
  std::string v;
  ASSERT_TRUE(store->Get("k0", &v).ok());
  EXPECT_EQ(v, value);
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(AlogStoreTest, RejectsInvalidOptions) {
  AlogOptions bad = TinyOptions();
  bad.gc_trigger = 0;
  EXPECT_FALSE(AlogStore::Open(&fs_, bad).ok());
  bad = TinyOptions();
  bad.gc_trigger = 1.5;
  EXPECT_FALSE(AlogStore::Open(&fs_, bad).ok());
  bad = TinyOptions();
  bad.segment_bytes = 0;
  EXPECT_FALSE(AlogStore::Open(&fs_, bad).ok());
}

}  // namespace
}  // namespace ptsb::alog
