// Tests for the block layer: memory device, iostat decorator, LBA trace
// collector (Fig. 4 machinery), partition view (software OP machinery).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "block/iostat.h"
#include "block/memory_device.h"
#include "block/partition.h"
#include "block/trace.h"

namespace ptsb::block {
namespace {

TEST(MemoryDeviceTest, RoundTrip) {
  MemoryBlockDevice dev(4096, 64);
  std::vector<uint8_t> w(4096, 0x5a), r(4096);
  ASSERT_TRUE(dev.Write(3, 1, w.data()).ok());
  ASSERT_TRUE(dev.Read(3, 1, r.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), 4096), 0);
}

TEST(MemoryDeviceTest, NullPayloadWritesZeros) {
  MemoryBlockDevice dev(4096, 8);
  std::vector<uint8_t> w(4096, 0xff), r(4096, 0xff);
  ASSERT_TRUE(dev.Write(0, 1, w.data()).ok());
  ASSERT_TRUE(dev.Write(0, 1, nullptr).ok());
  ASSERT_TRUE(dev.Read(0, 1, r.data()).ok());
  for (uint8_t b : r) EXPECT_EQ(b, 0);
}

TEST(MemoryDeviceTest, FaultInjection) {
  MemoryBlockDevice dev(4096, 8);
  dev.FailNextWrites(2);
  EXPECT_TRUE(dev.Write(0, 1, nullptr).IsIoError());
  EXPECT_TRUE(dev.Write(0, 1, nullptr).IsIoError());
  EXPECT_TRUE(dev.Write(0, 1, nullptr).ok());
}

TEST(MemoryDeviceTest, BoundsChecked) {
  MemoryBlockDevice dev(4096, 8);
  std::vector<uint8_t> buf(4096);
  EXPECT_TRUE(dev.Read(8, 1, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(dev.Write(7, 2, nullptr).IsInvalidArgument());
}

TEST(IoStatTest, CountsBytesAndOps) {
  MemoryBlockDevice dev(4096, 64);
  IoStatCollector io(&dev);
  std::vector<uint8_t> buf(4096 * 4);
  ASSERT_TRUE(io.Write(0, 4, buf.data()).ok());
  ASSERT_TRUE(io.Read(0, 2, buf.data()).ok());
  ASSERT_TRUE(io.Trim(8, 8).ok());
  ASSERT_TRUE(io.Flush().ok());
  const auto& c = io.counters();
  EXPECT_EQ(c.write_ops, 1u);
  EXPECT_EQ(c.write_bytes, 4u * 4096);
  EXPECT_EQ(c.read_ops, 1u);
  EXPECT_EQ(c.read_bytes, 2u * 4096);
  EXPECT_EQ(c.trim_bytes, 8u * 4096);
  EXPECT_EQ(c.flushes, 1u);
}

TEST(IoStatTest, FailedOpsNotCounted) {
  MemoryBlockDevice dev(4096, 64);
  IoStatCollector io(&dev);
  dev.FailNextWrites(1);
  EXPECT_FALSE(io.Write(0, 1, nullptr).ok());
  EXPECT_EQ(io.counters().write_ops, 0u);
}

TEST(IoStatTest, DeltaOperator) {
  MemoryBlockDevice dev(4096, 64);
  IoStatCollector io(&dev);
  ASSERT_TRUE(io.Write(0, 2, nullptr).ok());
  const IoCounters before = io.counters();
  ASSERT_TRUE(io.Write(0, 3, nullptr).ok());
  const IoCounters delta = io.counters() - before;
  EXPECT_EQ(delta.write_bytes, 3u * 4096);
  EXPECT_EQ(delta.write_ops, 1u);
}

TEST(TraceTest, FractionUntouched) {
  MemoryBlockDevice dev(4096, 100);
  LbaTraceCollector trace(&dev);
  // Write the first 55 LBAs only (the WiredTiger pattern of Fig. 4).
  for (uint64_t lba = 0; lba < 55; lba++) {
    ASSERT_TRUE(trace.Write(lba, 1, nullptr).ok());
  }
  EXPECT_DOUBLE_EQ(trace.FractionUntouched(), 0.45);
}

TEST(TraceTest, CdfShapeForSkewedWrites) {
  MemoryBlockDevice dev(4096, 100);
  LbaTraceCollector trace(&dev);
  // 90 writes to LBA 0, one write each to LBAs 1..10 (100 writes total).
  for (int i = 0; i < 90; i++) ASSERT_TRUE(trace.Write(0, 1, nullptr).ok());
  for (uint64_t lba = 1; lba <= 10; lba++) {
    ASSERT_TRUE(trace.Write(lba, 1, nullptr).ok());
  }
  const auto cdf = trace.WriteCdf(101);
  ASSERT_EQ(cdf.size(), 101u);
  EXPECT_DOUBLE_EQ(cdf.front().write_fraction, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().write_fraction, 1.0);
  // The hottest 1% of LBAs (LBA 0) received 90% of the writes.
  EXPECT_NEAR(cdf[1].write_fraction, 0.9, 1e-9);
  // By 11% of the LBA space the CDF is complete.
  EXPECT_NEAR(cdf[11].write_fraction, 1.0, 1e-9);
}

TEST(TraceTest, ResetClears) {
  MemoryBlockDevice dev(4096, 10);
  LbaTraceCollector trace(&dev);
  ASSERT_TRUE(trace.Write(0, 5, nullptr).ok());
  trace.Reset();
  EXPECT_DOUBLE_EQ(trace.FractionUntouched(), 1.0);
}

TEST(PartitionTest, OffsetsMapToBase) {
  MemoryBlockDevice dev(4096, 100);
  PartitionView part(&dev, 10, 50);
  std::vector<uint8_t> w(4096, 0x77), r(4096);
  ASSERT_TRUE(part.Write(0, 1, w.data()).ok());
  ASSERT_TRUE(dev.Read(10, 1, r.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), 4096), 0);
  EXPECT_EQ(part.num_lbas(), 50u);
  EXPECT_EQ(part.capacity_bytes(), 50u * 4096);
}

TEST(PartitionTest, RejectsOutOfRange) {
  MemoryBlockDevice dev(4096, 100);
  PartitionView part(&dev, 10, 50);
  std::vector<uint8_t> buf(4096);
  EXPECT_TRUE(part.Read(50, 1, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(part.Write(49, 2, nullptr).IsInvalidArgument());
  EXPECT_TRUE(part.Trim(50, 1).IsInvalidArgument());
}

TEST(PartitionTest, TrimStaysInPartition) {
  MemoryBlockDevice dev(4096, 100);
  PartitionView part(&dev, 10, 50);
  std::vector<uint8_t> w(4096, 0x33), r(4096);
  ASSERT_TRUE(dev.Write(9, 1, w.data()).ok());   // outside, before
  ASSERT_TRUE(dev.Write(60, 1, w.data()).ok());  // outside, after
  ASSERT_TRUE(part.Trim(0, 50).ok());
  ASSERT_TRUE(dev.Read(9, 1, r.data()).ok());
  EXPECT_EQ(r[0], 0x33);
  ASSERT_TRUE(dev.Read(60, 1, r.data()).ok());
  EXPECT_EQ(r[0], 0x33);
}

TEST(StackingTest, DecoratorsCompose) {
  // ssd-like stack used by experiments: device -> iostat -> trace -> part.
  MemoryBlockDevice dev(4096, 100);
  IoStatCollector io(&dev);
  LbaTraceCollector trace(&io);
  PartitionView part(&trace, 20, 60);
  ASSERT_TRUE(part.Write(5, 2, nullptr).ok());
  EXPECT_EQ(io.counters().write_bytes, 2u * 4096);
  EXPECT_GT(trace.write_counts()[25], 0u);
  EXPECT_EQ(dev.writes(), 2u);
}

}  // namespace
}  // namespace ptsb::block
