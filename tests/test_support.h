// Shared test helpers: a reference model (std::map oracle) and common
// fixtures for engine tests.
#ifndef PTSB_TESTS_TEST_SUPPORT_H_
#define PTSB_TESTS_TEST_SUPPORT_H_

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "kv/kvstore.h"
#include "util/random.h"
#include "util/status.h"

namespace ptsb::testing {

// Collects up to `count` pairs with key >= start via NewIterator() (what
// the deprecated KVStore::Scan shim used to do; tests that want a
// materialized range use this, production code streams the iterator).
inline Status CollectRange(
    kv::KVStore* store, std::string_view start, size_t count,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  std::unique_ptr<kv::KVStore::Iterator> it = store->NewIterator();
  for (it->Seek(start); it->Valid() && out->size() < count; it->Next()) {
    out->emplace_back(std::string(it->key()), std::string(it->value()));
  }
  return it->status();
}

// Oracle for property tests: mirrors every mutation applied to an engine.
class ReferenceModel {
 public:
  void Put(const std::string& key, const std::string& value) {
    map_[key] = value;
  }
  void Delete(const std::string& key) { map_.erase(key); }
  // Erases [begin, end); mirrors WriteBatch::DeleteRange's build-time
  // normalization of begin >= end to a no-op.
  void DeleteRange(const std::string& begin, const std::string& end) {
    if (begin >= end) return;
    map_.erase(map_.lower_bound(begin), map_.lower_bound(end));
  }
  std::optional<std::string> Get(const std::string& key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  size_t size() const { return map_.size(); }
  const std::map<std::string, std::string>& map() const { return map_; }

 private:
  std::map<std::string, std::string> map_;
};

// Applies `ops` random operations to both the engine and the model;
// periodically cross-checks random keys. put_bias in [0,1], delete the rest.
inline void RunRandomOps(kv::KVStore* store, ReferenceModel* model,
                         Rng* rng, int ops, uint64_t key_space,
                         size_t value_bytes, double put_bias = 0.8) {
  for (int i = 0; i < ops; i++) {
    const std::string key = "k" + std::to_string(rng->Uniform(key_space));
    if (rng->Bernoulli(put_bias)) {
      std::string value(value_bytes, '\0');
      rng->FillBytes(value.data(), value.size());
      ASSERT_TRUE(store->Put(key, value).ok()) << "put " << key;
      model->Put(key, value);
    } else {
      const Status s = store->Delete(key);
      ASSERT_TRUE(s.ok()) << "delete " << key << ": " << s.ToString();
      model->Delete(key);
    }
    if (i % 97 == 0) {
      const std::string probe = "k" + std::to_string(rng->Uniform(key_space));
      std::string got;
      const Status s = store->Get(probe, &got);
      const auto expected = model->Get(probe);
      if (expected.has_value()) {
        ASSERT_TRUE(s.ok()) << "missing " << probe << " at op " << i;
        ASSERT_EQ(got, *expected) << "wrong value for " << probe;
      } else {
        ASSERT_TRUE(s.IsNotFound()) << "phantom " << probe << " at op " << i;
      }
    }
  }
}

// Verifies every key in the model against the engine.
inline void VerifyAll(kv::KVStore* store, const ReferenceModel& model) {
  for (const auto& [key, expected] : model.map()) {
    std::string got;
    const Status s = store->Get(key, &got);
    ASSERT_TRUE(s.ok()) << "missing " << key << ": " << s.ToString();
    ASSERT_EQ(got, expected) << "wrong value for " << key;
  }
}

}  // namespace ptsb::testing

#endif  // PTSB_TESTS_TEST_SUPPORT_H_
