// Tests for the core experiment layer: metrics aggregation, CUSUM and the
// steady-state detector, the cost model, and end-to-end experiment runs at
// tiny scale for both engines and all device profiles.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.h"
#include "core/experiment.h"
#include "core/metrics.h"
#include "core/report.h"
#include "core/steady_state.h"
#include "util/random.h"

namespace ptsb::core {
namespace {

TEST(MetricsTest, SteadyStateAveragesTail) {
  MetricsSeries s;
  for (int i = 0; i < 12; i++) {
    WindowSample w;
    w.t_minutes = i * 10;
    w.kv_kops = i < 8 ? 10.0 : 2.0;  // drops at the end
    s.windows.push_back(w);
  }
  const WindowSample steady = s.SteadyState(4);
  EXPECT_DOUBLE_EQ(steady.kv_kops, 2.0);
  EXPECT_DOUBLE_EQ(steady.t_minutes, 110);
}

TEST(MetricsTest, CvDistinguishesStableFromSwinging) {
  MetricsSeries stable, swingy;
  Rng rng(1);
  for (int i = 0; i < 40; i++) {
    WindowSample w;
    w.kv_kops = 5.0 + 0.05 * rng.NextDouble();
    stable.windows.push_back(w);
    w.kv_kops = (i % 2 == 0) ? 9.0 : 1.0;
    swingy.windows.push_back(w);
  }
  EXPECT_LT(stable.ThroughputCv(), 0.05);
  EXPECT_GT(swingy.ThroughputCv(), 0.5);
}

TEST(MetricsTest, CsvAndTableContainData) {
  MetricsSeries s;
  WindowSample w;
  w.t_minutes = 10;
  w.kv_kops = 3.25;
  s.windows.push_back(w);
  EXPECT_NE(s.ToCsv().find("3.25"), std::string::npos);
  EXPECT_NE(s.ToTable("t").find("3.25"), std::string::npos);
}

TEST(CusumTest, NoAlarmOnStableSeries) {
  CusumDetector d(5, 0.05, 0.5);
  Rng rng(2);
  int alarms = 0;
  for (int i = 0; i < 100; i++) {
    alarms += d.Add(10.0 + 0.1 * (rng.NextDouble() - 0.5)) ? 1 : 0;
  }
  EXPECT_EQ(alarms, 0);
}

TEST(CusumTest, DetectsLevelShift) {
  CusumDetector d(5, 0.05, 0.5);
  for (int i = 0; i < 20; i++) EXPECT_FALSE(d.Add(10.0));
  bool fired = false;
  for (int i = 0; i < 20 && !fired; i++) fired = d.Add(6.0);  // -40% shift
  EXPECT_TRUE(fired);
}

TEST(CusumTest, DetectsSlowDrift) {
  CusumDetector d(5, 0.02, 0.5);
  double x = 10.0;
  bool fired = false;
  for (int i = 0; i < 200 && !fired; i++) {
    fired = d.Add(x);
    x *= 0.995;  // 0.5% decline per window
  }
  EXPECT_TRUE(fired);
}

TEST(SteadyStateTest, MetricsPathRequiresAllThreeStable) {
  SteadyStateDetector d(4, 0.1, 100.0);  // effectively disable volume rule
  // Stable throughput + WA-D, but WA-A still climbing: not steady.
  double wa_a = 5;
  for (int i = 0; i < 10; i++) {
    d.AddWindow(3.0, wa_a, 1.5, 0, 1 << 30);
    wa_a *= 1.2;
  }
  EXPECT_FALSE(d.IsSteady());
  // Now everything stabilizes.
  for (int i = 0; i < 4; i++) d.AddWindow(3.0, wa_a, 1.5, 0, 1 << 30);
  EXPECT_TRUE(d.IsSteady());
  EXPECT_TRUE(d.SteadyByMetrics());
}

TEST(SteadyStateTest, VolumeRuleOfThumb) {
  SteadyStateDetector d(4, 0.001, 3.0);  // strict metrics, 3x capacity
  uint64_t host = 0;
  for (int i = 0; i < 8; i++) {
    host += 1 << 29;  // 512 MiB per window on a 1 GiB device
    d.AddWindow(i % 2 == 0 ? 5 : 1, 10, 2, host, 1 << 30);
  }
  EXPECT_TRUE(d.IsSteady());
  EXPECT_TRUE(d.SteadyByVolume());
  EXPECT_FALSE(d.SteadyByMetrics());
}

TEST(CostModelTest, CapacityVsThroughputBound) {
  SystemProfile sys{"s", {{200ull * 1000 * 1000 * 1000, 2.0}}};
  // 1 TB at 1 Kops: capacity bound -> ceil(1e12/200e9) = 5 drives.
  EXPECT_EQ(DrivesNeeded(sys, 1.0, 1.0), 5u);
  // 0.2 TB at 10 Kops: throughput bound -> ceil(10/2) = 5 drives.
  EXPECT_EQ(DrivesNeeded(sys, 0.2, 10.0), 5u);
  // Tiny ask: still at least one drive.
  EXPECT_EQ(DrivesNeeded(sys, 0.01, 0.1), 1u);
}

TEST(CostModelTest, PicksBestOperatingPoint) {
  SystemProfile sys{"s",
                    {{100ull * 1000 * 1000 * 1000, 3.0},
                     {300ull * 1000 * 1000 * 1000, 1.0}}};
  // Throughput-hungry: the dense point would need 12 drives by capacity...
  // 1.2 TB at 12 Kops: point1 -> max(12, 4) = 12; point2 -> max(4, 12) = 12.
  EXPECT_EQ(DrivesNeeded(sys, 1.2, 12.0), 12u);
  // Capacity-hungry: 3 TB at 2 Kops: point1 -> max(30,1)=30; point2 ->
  // max(10,2)=10.
  EXPECT_EQ(DrivesNeeded(sys, 3.0, 2.0), 10u);
}

TEST(CostModelTest, EmptyProfileIsInfeasible) {
  SystemProfile sys{"empty", {}};
  EXPECT_EQ(DrivesNeeded(sys, 1.0, 1.0), 0u);
}

TEST(CostModelTest, HeatmapWinnersFlip) {
  SystemProfile fast_small{"fast", {{100ull * 1000 * 1000 * 1000, 10.0}}};
  SystemProfile slow_big{"big", {{400ull * 1000 * 1000 * 1000, 1.0}}};
  const auto map =
      ComputeHeatmap(fast_small, slow_big, {0.4, 4.0}, {2.0, 40.0});
  // Small dataset + high throughput: fast_small (A) wins.
  EXPECT_EQ(map.At(1, 0).winner, -1);
  // Large dataset + low throughput: slow_big (B) wins.
  EXPECT_EQ(map.At(0, 1).winner, 1);
  EXPECT_NE(map.Render().find("fast"), std::string::npos);
}

TEST(ReportTest, RenderContainsRowsAndRatio) {
  Report r("title");
  r.AddComparison("metric", 2.0, 1.0, "u");
  r.AddNote("a note");
  const std::string s = r.Render();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("0.50x"), std::string::npos);
  EXPECT_NE(s.find("a note"), std::string::npos);
}

// ---- End-to-end experiment runs at tiny scale.

ExperimentConfig TinyConfig(const std::string& engine) {
  ExperimentConfig c;
  c.scale = 2000;  // 200 MB device, ~100 MB dataset
  c.engine = engine;
  c.duration_minutes = 40;
  c.window_minutes = 10;
  c.value_bytes = 1000;
  c.name = "core-test";
  c.collect_lba_trace = true;
  return c;
}

class ExperimentEngineTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ExperimentEngineTest, ProducesSaneSeries) {
  auto result = RunExperiment(TinyConfig(GetParam()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->series.windows.size(), 3u);
  for (const auto& w : result->series.windows) {
    EXPECT_GT(w.kv_kops, 0);
    EXPECT_GE(w.wa_a_cum, 1.0);  // engines always write at least the data
    EXPECT_GE(w.wa_d_cum, 0.99);
    EXPECT_GT(w.disk_utilization, 0.2);  // ~50% dataset plus overheads
    EXPECT_LT(w.disk_utilization, 1.01);
    EXPECT_GE(w.space_amp, 0.9);
  }
  EXPECT_GT(result->update_ops, 0u);
  EXPECT_GT(result->load_minutes, 0);
  EXPECT_FALSE(result->ran_out_of_space);
  // Latency percentiles: ordered and nonzero (every op costs some time).
  for (const auto& w : result->series.windows) {
    EXPECT_GT(w.op_p50_us, 0);
    EXPECT_GE(w.op_p99_us, w.op_p50_us);
    EXPECT_GE(w.op_max_us, w.op_p99_us * 0.99);
  }
  // Fig. 4 machinery.
  EXPECT_GE(result->lba_fraction_untouched, 0.0);
  EXPECT_LE(result->lba_fraction_untouched, 1.0);
  ASSERT_FALSE(result->lba_cdf.empty());
  EXPECT_NEAR(result->lba_cdf.back().write_fraction, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Engines, ExperimentEngineTest,
                         ::testing::Values(std::string("lsm"),
                                           std::string("btree")));

TEST(ExperimentTest, LsmSweepsLbaSpaceWhileBtreeStaysPut) {
  // The Fig. 4 mechanism at unit-test scale: the LSM's file churn keeps
  // claiming previously-untouched LBAs as the run gets longer, while the
  // B+Tree's in-place file keeps its footprint essentially constant.
  auto short_cfg = TinyConfig("lsm");
  auto long_cfg = short_cfg;
  long_cfg.duration_minutes = 160;
  auto lsm_short = RunExperiment(short_cfg);
  auto lsm_long = RunExperiment(long_cfg);
  ASSERT_TRUE(lsm_short.ok() && lsm_long.ok());
  EXPECT_GT(lsm_short->lba_fraction_untouched,
            lsm_long->lba_fraction_untouched + 0.03);

  auto bt_short_cfg = TinyConfig("btree");
  auto bt_long_cfg = bt_short_cfg;
  bt_long_cfg.duration_minutes = 160;
  auto bt_short = RunExperiment(bt_short_cfg);
  auto bt_long = RunExperiment(bt_long_cfg);
  ASSERT_TRUE(bt_short.ok() && bt_long.ok());
  EXPECT_NEAR(bt_short->lba_fraction_untouched,
              bt_long->lba_fraction_untouched, 0.03);
}

TEST(ExperimentTest, PreconditioningRaisesBtreeWaD) {
  auto trimmed = TinyConfig("btree");
  auto prec = trimmed;
  prec.initial_state = ssd::InitialState::kPreconditioned;
  prec.duration_minutes = 60;
  trimmed.duration_minutes = 60;
  auto rt = RunExperiment(trimmed);
  auto rp = RunExperiment(prec);
  ASSERT_TRUE(rt.ok() && rp.ok());
  // Pitfall 3: the preconditioned device pays GC from the start.
  EXPECT_GT(rp->steady.wa_d_cum, rt->steady.wa_d_cum);
}

TEST(ExperimentTest, PartitionReservesSoftwareOp) {
  auto c = TinyConfig("lsm");
  c.partition_frac = 0.7;
  c.dataset_frac = 0.4;
  auto r = RunExperiment(c);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Utilization is measured against the whole device; a 0.4-of-device
  // dataset on a 0.7 partition must stay under 0.7.
  EXPECT_LT(r->steady.disk_utilization, 0.7);
}

TEST(ExperimentTest, OutOfSpaceSurfacesGracefully) {
  auto c = TinyConfig("lsm");
  c.dataset_frac = 0.95;  // cannot fit with LSM space amplification
  auto r = RunExperiment(c);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->ran_out_of_space);
}

TEST(ExperimentTest, OutOfSpaceDuringUpdatePhaseIsData) {
  // Regression: a dataset that *loads* (levels above it still empty) but
  // runs out of space later, as compaction fills the level structure —
  // including the final Close() flush — must report ran_out_of_space, not
  // an error. This is the paper's Fig. 6 RocksDB scenario.
  auto c = TinyConfig("lsm");
  c.dataset_frac = 0.90;
  c.duration_minutes = 120;
  auto r = RunExperiment(c);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->ran_out_of_space);
  EXPECT_GT(r->peak_disk_utilization, 0.9);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  auto c = TinyConfig("lsm");
  c.duration_minutes = 20;
  auto a = RunExperiment(c);
  auto b = RunExperiment(c);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->series.windows.size(), b->series.windows.size());
  EXPECT_EQ(a->update_ops, b->update_ops);
  EXPECT_DOUBLE_EQ(a->steady.kv_kops, b->steady.kv_kops);
  EXPECT_DOUBLE_EQ(a->steady.wa_d_cum, b->steady.wa_d_cum);
}

TEST(ExperimentTest, SmallValuesWorkloadRuns) {
  auto c = TinyConfig("btree");
  c.value_bytes = 128;
  c.duration_minutes = 20;
  auto r = RunExperiment(c);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->steady.kv_kops, 0);
}

TEST(ExperimentTest, MixedWorkloadRuns) {
  auto c = TinyConfig("lsm");
  c.write_fraction = 0.5;
  c.duration_minutes = 20;
  auto r = RunExperiment(c);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->update_ops, 0u);
}

TEST(ExperimentTest, Ssd2AndSsd3ProfilesRun) {
  for (const auto profile : {ssd::ProfileKind::kSsd2ConsumerQlc,
                             ssd::ProfileKind::kSsd3Optane}) {
    auto c = TinyConfig("lsm");
    c.profile = profile;
    c.duration_minutes = 20;
    auto r = RunExperiment(c);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r->steady.kv_kops, 0);
  }
}

}  // namespace
}  // namespace ptsb::core
