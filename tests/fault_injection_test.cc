// Fault-injection battery: crash at EVERY Nth device write.
//
// A counting fs::FaultPolicy first measures how many device writes W a
// deterministic mixed workload (batched puts, deletes, range deletes,
// snapshot scans mid-stream) issues, then replays the workload W times,
// failing every write from the Nth on (a dying drive stays dead), crashing
// the filesystem at the first surfaced error and reopening. Recovery must
// be prefix-consistent at every single crash point:
//
//  - Engines that log a batch as one record (lsm WAL, btree journal, alog
//    segment, each sync-per-record) must recover to the state after K
//    fully-acknowledged batches, or K+1 if the faulted batch's record
//    reached the device before the fault surfaced elsewhere in the same
//    Write. Nothing in between: a torn record is dropped whole.
//
//  - The wrappers (sharded splits a batch across shard commits, cached
//    interposes its own durability log over an inner engine) promise
//    per-key prefix consistency: every key independently reads from state
//    K or state K+1, never from an older state and never a value no
//    prefix ever held.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "block/memory_device.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/kvstore.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "util/random.h"
#include "util/status.h"

namespace ptsb {
namespace {

// Counts device writes; from `fail_at` (1-based) on, every write fails
// (sticky — the injected drive does not come back until cleared).
class CountingFaultPolicy : public fs::FaultPolicy {
 public:
  Status BeforeDeviceWrite(const std::string&) override {
    count_++;
    if (fail_at_ > 0 && count_ >= fail_at_) {
      return Status::IoError("injected device-write fault");
    }
    return Status::OK();
  }
  void Arm(uint64_t fail_at) {
    count_ = 0;
    fail_at_ = fail_at;
  }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
  uint64_t fail_at_ = 0;  // 0 = count only
};

struct EngineConfig {
  std::string label;
  std::string engine;
  std::map<std::string, std::string> params;
  bool per_key_consistency;  // wrappers: per-key (not whole-batch) prefix
};

// Tiny structural sizes so flush/compaction/checkpoint/GC run inside the
// short workload, plus sync-per-record durability: a batch whose Write
// returned OK is on the device and MUST survive the crash.
std::vector<EngineConfig> Configs() {
  kv::RegisterBuiltinEngines();
  std::vector<EngineConfig> configs;
  configs.push_back({"lsm",
                     "lsm",
                     {{"memtable_bytes", std::to_string(8 << 10)},
                      {"l1_target_bytes", std::to_string(32 << 10)},
                      {"sst_target_bytes", std::to_string(16 << 10)},
                      {"block_bytes", "1024"},
                      {"wal_sync_every_bytes", "1"}},
                     false});
  configs.push_back({"btree",
                     "btree",
                     {{"leaf_max_bytes", std::to_string(2 << 10)},
                      {"internal_max_bytes", "512"},
                      {"cache_bytes", std::to_string(16 << 10)},
                      {"checkpoint_every_bytes", std::to_string(32 << 10)},
                      {"journal_enabled", "1"},
                      {"journal_sync_every_bytes", "1"}},
                     false});
  configs.push_back({"alog",
                     "alog",
                     {{"segment_bytes", std::to_string(8 << 10)},
                      {"gc_trigger", "0.4"},
                      {"sync_every_bytes", "1"}},
                     false});
  configs.push_back({"sharded/alog",
                     "sharded",
                     {{"shards", "3"},
                      {"inner_engine", "alog"},
                      {"segment_bytes", std::to_string(8 << 10)},
                      {"gc_trigger", "0.4"},
                      {"sync_every_bytes", "1"}},
                     true});
  configs.push_back({"cached/lsm",
                     "cached",
                     {{"inner_engine", "lsm"},
                      {"memtable_bytes", std::to_string(8 << 10)},
                      {"l1_target_bytes", std::to_string(32 << 10)},
                      {"sst_target_bytes", std::to_string(16 << 10)},
                      {"block_bytes", "1024"},
                      {"write_buffer_bytes", std::to_string(4 << 10)},
                      {"read_cache_bytes", std::to_string(16 << 10)},
                      {"log_sync_every_bytes", "1"}},
                     true});
  return configs;
}

// The deterministic workload: ~24 batches of puts/deletes with a range
// delete every few batches. Built once; the same sequence drives the
// count pass, every crash pass, and the reference models.
std::vector<kv::WriteBatch> BuildWorkload() {
  std::vector<kv::WriteBatch> batches;
  Rng rng(0xfa0170);
  for (int b = 0; b < 24; b++) {
    kv::WriteBatch batch;
    const size_t n = 2 + rng.Uniform(6);
    for (size_t j = 0; j < n; j++) {
      const uint64_t id = rng.Uniform(60);
      if (rng.Bernoulli(0.8)) {
        batch.Put(kv::MakeKey(id), kv::MakeValue(id + b * 911, 48));
      } else {
        batch.Delete(kv::MakeKey(id));
      }
    }
    if (b % 5 == 4) {
      const uint64_t lo = rng.Uniform(50);
      batch.DeleteRange(kv::MakeKey(lo), kv::MakeKey(lo + 8));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

using Model = std::map<std::string, std::string>;

void ApplyToModel(Model* model, const kv::WriteBatch& batch) {
  for (const kv::WriteBatch::Entry& e : batch.entries()) {
    switch (e.kind) {
      case kv::WriteBatch::EntryKind::kPut:
        (*model)[e.key] = e.value;
        break;
      case kv::WriteBatch::EntryKind::kDelete:
        model->erase(e.key);
        break;
      case kv::WriteBatch::EntryKind::kDeleteRange: {
        auto it = model->lower_bound(e.key);
        while (it != model->end() && it->first < e.value) {
          it = model->erase(it);
        }
        break;
      }
    }
  }
}

// Model state after each prefix: prefix_models[k] = state after k batches.
std::vector<Model> PrefixModels(const std::vector<kv::WriteBatch>& batches) {
  std::vector<Model> models;
  models.emplace_back();
  for (const kv::WriteBatch& batch : batches) {
    Model next = models.back();
    ApplyToModel(&next, batch);
    models.push_back(std::move(next));
  }
  return models;
}

struct Harness {
  block::MemoryBlockDevice dev{4096, 1 << 14};
  fs::SimpleFs fs{&dev, {}};
  std::unique_ptr<kv::KVStore> store;
};

std::unique_ptr<Harness> OpenStore(const EngineConfig& config,
                                   Harness* reuse = nullptr) {
  std::unique_ptr<Harness> h;
  if (reuse == nullptr) h = std::make_unique<Harness>();
  Harness* target = reuse ? reuse : h.get();
  kv::EngineOptions options;
  options.engine = config.engine;
  options.fs = &target->fs;
  options.params = config.params;
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << config.label << ": "
                           << opened.status().ToString();
  target->store = *std::move(opened);
  return h;
}

// Runs the workload until the first Write error; returns the number of
// fully-acknowledged batches. A snapshot scan runs mid-stream so the
// snapshot read path is live while the device degrades.
size_t RunWorkload(kv::KVStore* store,
                   const std::vector<kv::WriteBatch>& batches) {
  size_t ok_batches = 0;
  std::shared_ptr<const kv::Snapshot> snap;
  for (size_t b = 0; b < batches.size(); b++) {
    if (!store->Write(batches[b]).ok()) break;
    ok_batches++;
    if (b == batches.size() / 2) {
      // Mid-workload snapshot scan: must not disturb recovery state.
      auto got = store->GetSnapshot();
      if (got.ok()) {
        snap = *std::move(got);
        kv::ReadOptions opts;
        opts.snapshot = snap.get();
        auto it = store->NewIterator(opts);
        for (it->SeekToFirst(); it->Valid(); it->Next()) {
        }
      }
    }
  }
  snap.reset();
  return ok_batches;
}

// Whole-batch engines: the recovered state IS one of the two candidate
// prefixes.
void ExpectWholeBatchConsistent(const std::string& label, uint64_t fail_at,
                                kv::KVStore* store, const Model& at_k,
                                const Model& at_k1) {
  Model got;
  auto it = store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    got[std::string(it->key())] = std::string(it->value());
  }
  ASSERT_TRUE(it->status().ok()) << label << " N=" << fail_at;
  std::string diff;
  for (const auto& [key, value] : at_k) {
    auto it2 = got.find(key);
    if (it2 == got.end()) {
      diff += " missing:" + key;
    } else if (it2->second != value) {
      diff += " differs:" + key;
    }
  }
  for (const auto& [key, value] : got) {
    if (at_k.count(key) == 0) diff += " phantom:" + key;
  }
  EXPECT_TRUE(got == at_k || got == at_k1)
      << label << " crash at device write " << fail_at
      << ": recovered state matches neither prefix K (" << at_k.size()
      << " keys) nor K+1 (" << at_k1.size() << " keys); got " << got.size()
      << " keys; vs K:" << diff;
}

// Wrapper engines: every key independently reads from prefix K or K+1.
void ExpectPerKeyConsistent(const std::string& label, uint64_t fail_at,
                            kv::KVStore* store, const Model& at_k,
                            const Model& at_k1) {
  const auto expected = [&](const std::string& key) {
    std::vector<std::optional<std::string>> allowed;
    const auto k = at_k.find(key);
    allowed.push_back(k == at_k.end() ? std::nullopt
                                      : std::make_optional(k->second));
    const auto k1 = at_k1.find(key);
    allowed.push_back(k1 == at_k1.end() ? std::nullopt
                                        : std::make_optional(k1->second));
    return allowed;
  };
  // Every key either model mentions, probed point-wise.
  Model all = at_k;
  all.insert(at_k1.begin(), at_k1.end());
  for (const auto& [key, unused] : all) {
    std::string value;
    const Status s = store->Get(key, &value);
    ASSERT_TRUE(s.ok() || s.IsNotFound()) << label << " N=" << fail_at;
    const std::optional<std::string> got =
        s.ok() ? std::make_optional(value) : std::nullopt;
    const auto allowed = expected(key);
    EXPECT_TRUE(got == allowed[0] || got == allowed[1])
        << label << " crash at device write " << fail_at << ": key " << key
        << " reads a value no adjacent prefix held";
  }
  // No phantom keys outside both models.
  auto it = store->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_TRUE(all.count(std::string(it->key())) > 0)
        << label << " N=" << fail_at << ": phantom key " << it->key();
  }
  ASSERT_TRUE(it->status().ok()) << label << " N=" << fail_at;
}

TEST(FaultInjectionBattery, EveryCrashPointRecoversAPrefix) {
  const std::vector<kv::WriteBatch> batches = BuildWorkload();
  const std::vector<Model> prefixes = PrefixModels(batches);

  for (const EngineConfig& config : Configs()) {
    // Pass 0: count the device writes the full workload issues.
    CountingFaultPolicy policy;
    uint64_t total_writes = 0;
    {
      auto h = OpenStore(config);
      ASSERT_NE(h->store, nullptr) << config.label;
      h->fs.SetFaultPolicy(&policy);
      policy.Arm(0);
      ASSERT_EQ(RunWorkload(h->store.get(), batches), batches.size())
          << config.label << ": workload must succeed without faults";
      h->fs.SetFaultPolicy(nullptr);
      total_writes = policy.count();
      ASSERT_TRUE(h->store->Close().ok()) << config.label;
    }
    ASSERT_GT(total_writes, batches.size())
        << config.label << ": sync-per-record must write per batch";

    // Crash at every Nth device write.
    for (uint64_t n = 1; n <= total_writes; n++) {
      auto h = OpenStore(config);
      ASSERT_NE(h->store, nullptr) << config.label;
      h->fs.SetFaultPolicy(&policy);
      policy.Arm(n);
      const size_t k = RunWorkload(h->store.get(), batches);
      // Crash: drop unsynced state, leak the store so destructors cannot
      // write post-crash, clear the injection for recovery.
      h->fs.SimulateCrash();
      h->store.release();  // NOLINT: intentional leak of a crashed store
      h->fs.SetFaultPolicy(nullptr);
      OpenStore(config, h.get());
      ASSERT_NE(h->store, nullptr) << config.label << " N=" << n;
      const Model& at_k = prefixes[k];
      const Model& at_k1 = prefixes[std::min(k + 1, batches.size())];
      if (config.per_key_consistency) {
        ExpectPerKeyConsistent(config.label, n, h->store.get(), at_k, at_k1);
      } else {
        ExpectWholeBatchConsistent(config.label, n, h->store.get(), at_k,
                                   at_k1);
      }
      const Status closed = h->store->Close();
      ASSERT_TRUE(closed.ok())
          << config.label << " N=" << n << ": " << closed.ToString();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// The same battery on the simulated SSD with background_io=1 and every
// QoS knob armed (slice preemption, weighted interleave, token-bucket
// admission). Background work is then booked AHEAD of the foreground
// clock and foreground commits take the deferred-admission write path —
// a crash at any device write must still recover a clean prefix: the
// scheduler may move work in time, never corrupt what reached the
// device before the fault.
struct QosHarness {
  static ssd::SsdConfig Config() {
    ssd::SsdConfig c;
    c.geometry.pages_per_block = 64;
    c.geometry.logical_bytes = 8ull << 20;
    c.geometry.hardware_op_frac = 0.25;
    c.timing.cache_bytes = 0;  // commits synchronous with the backend
    c.background_slice_ns = 50'000;
    c.class_weights = {1, 1, 1};
    c.background_rate_mbps = 10;
    return c;
  }
  sim::SimClock clock;
  ssd::SsdDevice ssd{Config(), &clock};
  fs::SimpleFs fs{&ssd, {}};
  std::unique_ptr<kv::KVStore> store;
};

void OpenQosStore(const EngineConfig& config, QosHarness* h) {
  kv::EngineOptions options;
  options.engine = config.engine;
  options.fs = &h->fs;
  options.clock = &h->clock;
  options.params = config.params;
  options.params["background_io"] = "1";
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << config.label << ": "
                           << opened.status().ToString();
  h->store = *std::move(opened);
}

TEST(FaultInjectionBattery, CrashUnderQosScheduledBackgroundIo) {
  const std::vector<kv::WriteBatch> batches = BuildWorkload();
  const std::vector<Model> prefixes = PrefixModels(batches);
  EngineConfig config = Configs()[0];  // lsm
  ASSERT_EQ(config.engine, "lsm");
  config.label = "lsm+qos";
  // Structural sizes small enough that the ~7 KB workload flushes and
  // compacts repeatedly — otherwise no background-class I/O exists to
  // schedule.
  config.params["memtable_bytes"] = "1024";
  config.params["l1_target_bytes"] = "4096";
  config.params["sst_target_bytes"] = "2048";

  // Count pass; also prove the battery really runs under the scheduler:
  // compaction must have issued background I/O on the device.
  CountingFaultPolicy policy;
  uint64_t total_writes = 0;
  {
    auto h = std::make_unique<QosHarness>();
    OpenQosStore(config, h.get());
    ASSERT_NE(h->store, nullptr);
    h->fs.SetFaultPolicy(&policy);
    policy.Arm(0);
    ASSERT_EQ(RunWorkload(h->store.get(), batches), batches.size());
    h->fs.SetFaultPolicy(nullptr);
    total_writes = policy.count();
    const auto stats = h->ssd.channel_stats()[0];
    const auto bg = static_cast<size_t>(sim::IoClass::kBackground);
    EXPECT_GT(stats.class_bytes[bg], 0u)
        << "background_io=1 must issue background-class device I/O";
    ASSERT_TRUE(h->store->Close().ok());
  }
  ASSERT_GT(total_writes, batches.size());

  for (uint64_t n = 1; n <= total_writes; n++) {
    auto h = std::make_unique<QosHarness>();
    OpenQosStore(config, h.get());
    ASSERT_NE(h->store, nullptr);
    h->fs.SetFaultPolicy(&policy);
    policy.Arm(n);
    const size_t k = RunWorkload(h->store.get(), batches);
    h->fs.SimulateCrash();
    h->store.release();  // NOLINT: intentional leak of a crashed store
    h->fs.SetFaultPolicy(nullptr);
    OpenQosStore(config, h.get());
    ASSERT_NE(h->store, nullptr) << " N=" << n;
    ExpectWholeBatchConsistent(config.label, n, h->store.get(), prefixes[k],
                               prefixes[std::min(k + 1, batches.size())]);
    ASSERT_TRUE(h->store->Close().ok()) << config.label << " N=" << n;
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// The same battery with partitioned subcompactions live: every picked
// compaction is split into 4 key subranges running in their own
// background lanes, so a crash can land after some subranges wrote
// their output SSTs but before the single atomic install. Recovery must
// still be a clean prefix, and the open-time orphan sweep must reclaim
// the partial subrange outputs the manifest never referenced.
struct SubcompactionHarness {
  static ssd::SsdConfig Config() {
    ssd::SsdConfig c;
    c.geometry.pages_per_block = 64;
    c.geometry.logical_bytes = 8ull << 20;
    c.geometry.hardware_op_frac = 0.25;
    c.timing.cache_bytes = 0;  // commits synchronous with the backend
    return c;
  }
  sim::SimClock clock;
  ssd::SsdDevice ssd{Config(), &clock};
  fs::SimpleFs fs{&ssd, {}};
  std::unique_ptr<kv::KVStore> store;
};

size_t CountSstFiles(const fs::SimpleFs& fs) {
  size_t n = 0;
  for (const std::string& name : fs.List("")) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".sst") == 0) n++;
  }
  return n;
}

TEST(FaultInjectionBattery, CrashMidSubcompactionSweepsPartialOutputs) {
  const std::vector<kv::WriteBatch> batches = BuildWorkload();
  const std::vector<Model> prefixes = PrefixModels(batches);
  EngineConfig config = Configs()[0];  // lsm
  ASSERT_EQ(config.engine, "lsm");
  config.label = "lsm+subcompaction";
  // Small enough that the ~7 KB workload compacts repeatedly, with every
  // pick partitioned four ways across background lanes.
  config.params["memtable_bytes"] = "1024";
  config.params["l1_target_bytes"] = "4096";
  config.params["sst_target_bytes"] = "2048";
  config.params["background_io"] = "1";
  config.params["compaction_parallelism"] = "4";

  const auto open = [&](SubcompactionHarness* h) {
    kv::EngineOptions options;
    options.engine = config.engine;
    options.fs = &h->fs;
    options.clock = &h->clock;
    options.params = config.params;
    auto opened = kv::OpenStore(options);
    ASSERT_TRUE(opened.ok()) << config.label << ": "
                             << opened.status().ToString();
    h->store = *std::move(opened);
  };

  // Count pass; prove compactions actually ran (otherwise no
  // subcompaction ever starts and the battery tests nothing).
  CountingFaultPolicy policy;
  uint64_t total_writes = 0;
  {
    auto h = std::make_unique<SubcompactionHarness>();
    open(h.get());
    ASSERT_NE(h->store, nullptr);
    h->fs.SetFaultPolicy(&policy);
    policy.Arm(0);
    ASSERT_EQ(RunWorkload(h->store.get(), batches), batches.size());
    h->fs.SetFaultPolicy(nullptr);
    total_writes = policy.count();
    EXPECT_GT(h->store->GetStats().compaction_bytes_written, 0u)
        << "workload must compact for the battery to be meaningful";
    ASSERT_TRUE(h->store->Close().ok());
  }
  ASSERT_GT(total_writes, batches.size());

  size_t swept_files = 0;
  for (uint64_t n = 1; n <= total_writes; n++) {
    auto h = std::make_unique<SubcompactionHarness>();
    open(h.get());
    ASSERT_NE(h->store, nullptr);
    h->fs.SetFaultPolicy(&policy);
    policy.Arm(n);
    const size_t k = RunWorkload(h->store.get(), batches);
    h->fs.SimulateCrash();
    h->store.release();  // NOLINT: intentional leak of a crashed store
    h->fs.SetFaultPolicy(nullptr);
    const size_t ssts_at_crash = CountSstFiles(h->fs);
    open(h.get());
    ASSERT_NE(h->store, nullptr) << " N=" << n;
    // Files present at the crash but gone after recovery were reclaimed
    // by the open-time sweep (never-installed subrange outputs).
    const size_t ssts_after = CountSstFiles(h->fs);
    if (ssts_at_crash > ssts_after) swept_files += ssts_at_crash - ssts_after;
    ExpectWholeBatchConsistent(config.label, n, h->store.get(), prefixes[k],
                               prefixes[std::min(k + 1, batches.size())]);
    ASSERT_TRUE(h->store->Close().ok()) << config.label << " N=" << n;
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Across the battery some crash point must land after a subrange
  // output was created but before the atomic install.
  EXPECT_GT(swept_files, 0u)
      << "no crash point left a partial subcompaction output to sweep";
}

}  // namespace
}  // namespace ptsb
