// ShardedStore: router correctness (hash partition, batch splitting,
// merge iteration, per-shard recovery, stats aggregation) plus the
// multi-threaded stress battery this repo's first concurrent execution
// path is gated on. The stress test runs N writer threads with disjoint
// and overlapping key ranges, commits cross-shard batches concurrently,
// then checks the full iterator stream (and its checksum) against a
// single-threaded golden run of the same op streams. Built with
// -fsanitize=thread in the CI TSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "block/memory_device.h"
#include "core/experiment.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "sharded/sharded_store.h"
#include "test_support.h"
#include "util/crc32.h"
#include "util/random.h"

namespace ptsb {
namespace {

// Structural params small enough that flush/compaction/checkpoint/GC all
// fire inside the stress run.
std::map<std::string, std::string> InnerParams(const std::string& inner) {
  if (inner == "lsm") {
    return {{"memtable_bytes", std::to_string(32 << 10)},
            {"l1_target_bytes", std::to_string(128 << 10)},
            {"sst_target_bytes", std::to_string(64 << 10)},
            {"block_bytes", "1024"}};
  }
  if (inner == "btree") {
    return {{"leaf_max_bytes", std::to_string(2 << 10)},
            {"internal_max_bytes", "512"},
            {"cache_bytes", std::to_string(32 << 10)},
            {"checkpoint_every_bytes", std::to_string(128 << 10)},
            {"file_grow_bytes", std::to_string(64 << 10)}};
  }
  if (inner == "alog") {
    return {{"segment_bytes", std::to_string(32 << 10)},
            {"gc_trigger", "0.4"}};
  }
  return {};
}

struct Harness {
  block::MemoryBlockDevice dev{4096, 1 << 15};
  fs::SimpleFs fs{&dev, {}};
  std::unique_ptr<kv::KVStore> store;
};

std::unique_ptr<Harness> OpenSharded(const std::string& inner, int shards,
                                     const std::string& root = "") {
  auto h = std::make_unique<Harness>();
  kv::EngineOptions options;
  options.engine = "sharded";
  options.fs = &h->fs;
  options.root = root;
  options.params = InnerParams(inner);
  options.params["shards"] = std::to_string(shards);
  options.params["inner_engine"] = inner;
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << inner << ": " << opened.status().ToString();
  h->store = *std::move(opened);
  return h;
}

TEST(ShardedStoreTest, RejectsBadConfigurations) {
  kv::RegisterBuiltinEngines();
  Harness h;
  kv::EngineOptions options;
  options.engine = "sharded";
  options.fs = &h.fs;

  options.params = {{"inner_engine", "sharded"}};
  auto nested = kv::OpenStore(options);
  ASSERT_FALSE(nested.ok());
  EXPECT_TRUE(nested.status().IsInvalidArgument());

  options.params = {{"inner_engine", "no-such-engine"}};
  EXPECT_FALSE(kv::OpenStore(options).ok());

  options.params = {{"shards", "0"}};
  EXPECT_FALSE(kv::OpenStore(options).ok());
}

TEST(ShardedStoreTest, RejectsLayoutMismatchOnReopen) {
  // Shard count and inner engine are part of the on-disk layout (the
  // hash is mod-shards): reopening existing data with different values
  // would silently strand keys, so Open must refuse.
  Harness h;
  {
    kv::EngineOptions options;
    options.engine = "sharded";
    options.fs = &h.fs;
    options.params = {{"shards", "4"}, {"inner_engine", "alog"}};
    auto store = *kv::OpenStore(options);
    ASSERT_TRUE(store->Put("k", "v").ok());
    ASSERT_TRUE(store->Close().ok());
  }
  kv::EngineOptions options;
  options.engine = "sharded";
  options.fs = &h.fs;

  options.params = {{"shards", "2"}, {"inner_engine", "alog"}};
  auto fewer = kv::OpenStore(options);
  ASSERT_FALSE(fewer.ok());
  EXPECT_TRUE(fewer.status().IsInvalidArgument());

  options.params = {{"shards", "4"}, {"inner_engine", "lsm"}};
  auto other_engine = kv::OpenStore(options);
  ASSERT_FALSE(other_engine.ok());
  EXPECT_TRUE(other_engine.status().IsInvalidArgument());

  // Matching layout still reopens fine.
  options.params = {{"shards", "4"}, {"inner_engine", "alog"}};
  auto same = kv::OpenStore(options);
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  std::string value;
  ASSERT_TRUE((*same)->Get("k", &value).ok());
  EXPECT_EQ(value, "v");
  ASSERT_TRUE((*same)->Close().ok());
}

TEST(ShardedStoreTest, EveryBuiltinEngineSupportsConcurrentWriters) {
  // The capability the multi-threaded driver keys off. Every built-in
  // engine now routes Write through a cross-thread kv::WriteGroup (and
  // the router serializes per shard), so they all advertise it; the
  // driver's refusal path only guards out-of-tree engines that keep the
  // base-class default (false).
  kv::RegisterBuiltinEngines();
  for (const std::string inner : {"lsm", "btree", "alog"}) {
    Harness h;
    kv::EngineOptions options;
    options.engine = inner;
    options.fs = &h.fs;
    auto store = *kv::OpenStore(options);
    EXPECT_TRUE(store->SupportsConcurrentWriters()) << inner;
    ASSERT_TRUE(store->Close().ok());
  }
  auto h = OpenSharded("alog", 2);
  EXPECT_TRUE(h->store->SupportsConcurrentWriters());
  ASSERT_TRUE(h->store->Close().ok());
}

TEST(ShardedStoreTest, DriverRunsThreadsOnUnshardedEngine) {
  // num_threads > 1 on a bare (unsharded) engine is now a supported
  // configuration: the workers' batches meet in the engine's write
  // group instead of corrupting it. A short run must complete cleanly
  // and perform work.
  core::ExperimentConfig config;
  config.engine = "lsm";
  config.num_threads = 4;
  config.scale = 8000;
  config.duration_minutes = 1;
  auto result = core::RunExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->update_ops, 0u);
  // The group-commit accounting must be consistent: every user batch
  // landed in some group, and no more records than groups were written.
  EXPECT_GT(result->engine_stats.write_groups, 0u);
  EXPECT_GE(result->engine_stats.write_group_batches,
            result->engine_stats.write_groups);
}

TEST(ShardedStoreTest, RoutesEveryKeyToExactlyOneShardStably) {
  auto h = OpenSharded("alog", 5);
  auto* sharded = static_cast<sharded::ShardedStore*>(h->store.get());
  ASSERT_EQ(sharded->num_shards(), 5);
  // Routing is a pure function of the key: the same key always lands on
  // the same shard (otherwise reopen would lose data), and over many keys
  // every shard gets some.
  std::vector<int> hits(5, 0);
  for (uint64_t i = 0; i < 5000; i++) {
    const std::string key = kv::MakeKey(i);
    const int shard = sharded->ShardOf(key);
    ASSERT_EQ(shard, sharded->ShardOf(key));
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 5);
    hits[static_cast<size_t>(shard)]++;
  }
  for (int shard_hits : hits) EXPECT_GT(shard_hits, 0);
  ASSERT_TRUE(h->store->Close().ok());
}

TEST(ShardedStoreTest, CrossShardBatchesAndStatsAggregation) {
  auto h = OpenSharded("lsm", 4);
  auto* sharded = static_cast<sharded::ShardedStore*>(h->store.get());

  // One batch spanning all shards, including a same-key duplicate that
  // must stay last-entry-wins after the split.
  kv::WriteBatch batch;
  for (uint64_t i = 0; i < 64; i++) {
    batch.Put(kv::MakeKey(i), kv::MakeValue(i, 64));
  }
  batch.Put(kv::MakeKey(7), kv::MakeValue(777, 64));
  batch.Delete(kv::MakeKey(13));
  ASSERT_TRUE(h->store->Write(batch).ok());

  std::string value;
  ASSERT_TRUE(h->store->Get(kv::MakeKey(7), &value).ok());
  EXPECT_EQ(kv::ValueSeed(value), 777u);
  EXPECT_TRUE(h->store->Get(kv::MakeKey(13), &value).IsNotFound());

  // The merged iterator yields all live keys in order, across shards.
  auto it = h->store->NewIterator();
  uint64_t seen = 0;
  std::string prev;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_TRUE(prev.empty() || prev < it->key());
    prev.assign(it->key());
    seen++;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(seen, 63u);  // 64 puts, one deleted

  // Aggregation: the total equals the per-shard sum, and the work is
  // actually spread (every shard saw at least one put).
  const auto total = h->store->GetStats();
  EXPECT_EQ(total.user_puts, 65u);
  EXPECT_EQ(total.user_deletes, 1u);
  uint64_t puts = 0;
  for (int shard = 0; shard < sharded->num_shards(); shard++) {
    const auto s = sharded->ShardStats(shard);
    EXPECT_GT(s.user_puts, 0u) << "shard " << shard << " got no writes";
    puts += s.user_puts;
  }
  EXPECT_EQ(puts, total.user_puts);
  EXPECT_GT(h->store->DiskBytesUsed(), 0u);
  ASSERT_TRUE(h->store->Close().ok());
}

TEST(ShardedStoreTest, ReopenRecoversEveryShard) {
  for (const std::string inner : {"lsm", "btree", "alog"}) {
    auto h = OpenSharded(inner, 3);
    testing::ReferenceModel model;
    Rng rng(17);
    for (int i = 0; i < 800; i++) {
      const std::string key = "k" + std::to_string(rng.Uniform(300));
      std::string value(rng.UniformRange(1, 200), '\0');
      rng.FillBytes(value.data(), value.size());
      ASSERT_TRUE(h->store->Put(key, value).ok()) << inner;
      model.Put(key, value);
    }
    ASSERT_TRUE(h->store->Close().ok()) << inner;
    h->store.reset();

    // Reopen on the same fs and root: every shard recovers through the
    // inner engine's own recovery path.
    kv::EngineOptions options;
    options.engine = "sharded";
    options.fs = &h->fs;
    options.params = InnerParams(inner);
    options.params["shards"] = "3";
    options.params["inner_engine"] = inner;
    auto opened = kv::OpenStore(options);
    ASSERT_TRUE(opened.ok()) << inner << ": " << opened.status().ToString();
    h->store = *std::move(opened);
    testing::VerifyAll(h->store.get(), model);
    ASSERT_TRUE(h->store->Close().ok()) << inner;
  }
}

// ---- The multi-threaded stress battery.
//
// Phase A: N writer threads over DISJOINT id ranges — each thread's final
// state depends only on its own (deterministic) op stream, so the
// concurrent run must equal a sequential replay.
// Phase B: the same threads over one OVERLAPPING range, values a pure
// function of the key — the final value of every key is
// interleaving-independent — while reader threads hammer Gets. Batches in
// both phases span shards, so the concurrent sub-batch commit path (the
// per-shard worker queues) is exercised throughout.
constexpr int kStressThreads = 4;
constexpr uint64_t kKeysPerThread = 1500;
constexpr uint64_t kOverlapBase = 1'000'000;
constexpr uint64_t kOverlapKeys = 1200;
constexpr int kRoundsA = 150;
constexpr int kRoundsB = 120;
constexpr size_t kBatch = 8;
constexpr size_t kStressValueBytes = 64;

// The deterministic value every writer uses for an overlapping-range key.
std::string OverlapValue(uint64_t id) {
  return kv::MakeValue(id * 2654435761u + 1, kStressValueBytes);
}

// Thread t's phase-A op stream applied to `store` (used by the concurrent
// run and the golden replay alike). Mix of cross-shard batched puts and
// deletes within the thread's own id range.
void RunDisjointStream(kv::KVStore* store, int t) {
  Rng rng(0x5eed + static_cast<uint64_t>(t));
  const uint64_t base = static_cast<uint64_t>(t) * kKeysPerThread;
  kv::WriteBatch batch;
  for (int round = 0; round < kRoundsA; round++) {
    batch.Clear();
    for (size_t j = 0; j < kBatch; j++) {
      const uint64_t id = base + rng.Uniform(kKeysPerThread);
      if (rng.Bernoulli(0.15)) {
        batch.Delete(kv::MakeKey(id));
      } else {
        batch.Put(kv::MakeKey(id),
                  kv::MakeValue(rng.Next(), kStressValueBytes));
      }
    }
    ASSERT_TRUE(store->Write(batch).ok());
  }
}

// Thread t's phase-B op stream: put-only batches over the shared range,
// every value a pure function of its key.
void RunOverlappingStream(kv::KVStore* store, int t) {
  Rng rng(0xface + static_cast<uint64_t>(t));
  kv::WriteBatch batch;
  for (int round = 0; round < kRoundsB; round++) {
    batch.Clear();
    for (size_t j = 0; j < kBatch; j++) {
      const uint64_t id = kOverlapBase + rng.Uniform(kOverlapKeys);
      batch.Put(kv::MakeKey(id), OverlapValue(id));
    }
    ASSERT_TRUE(store->Write(batch).ok());
  }
}

// Streams both stores' full iterators in lockstep — ONE cursor per store
// (a second cursor on the same B+Tree store could evict the first's leaf
// under cache pressure, which the debug epoch check rightly aborts on).
// Asserts equality pair by pair so failures name the first diverging
// key, and accumulates an independent CRC32C per stream; returns the
// `got` checksum after asserting the two streams hash identically.
uint32_t ChecksumAndCompare(kv::KVStore* got, kv::KVStore* want) {
  auto it_got = got->NewIterator();
  auto it_want = want->NewIterator();
  uint32_t crc_got = 0;
  uint32_t crc_want = 0;
  uint64_t n = 0;
  it_got->SeekToFirst();
  it_want->SeekToFirst();
  while (it_want->Valid()) {
    EXPECT_TRUE(it_got->Valid()) << "concurrent run ended early at " << n
                                 << " (missing " << it_want->key() << ")";
    if (!it_got->Valid()) break;
    EXPECT_EQ(it_got->key(), it_want->key()) << "at entry " << n;
    EXPECT_EQ(it_got->value(), it_want->value())
        << "for key " << it_got->key();
    crc_got = Crc32c(crc_got, it_got->key().data(), it_got->key().size());
    crc_got =
        Crc32c(crc_got, it_got->value().data(), it_got->value().size());
    crc_want =
        Crc32c(crc_want, it_want->key().data(), it_want->key().size());
    crc_want =
        Crc32c(crc_want, it_want->value().data(), it_want->value().size());
    it_got->Next();
    it_want->Next();
    n++;
  }
  EXPECT_FALSE(it_got->Valid()) << "concurrent run has phantom keys";
  EXPECT_TRUE(it_got->status().ok()) << it_got->status().ToString();
  EXPECT_TRUE(it_want->status().ok()) << it_want->status().ToString();
  // The checksum is the headline number: identical streams => identical
  // bytes, independent of thread interleaving.
  EXPECT_EQ(crc_got, crc_want);
  return crc_got;
}

class ShardedStressTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardedStressTest, ConcurrentWritersMatchGoldenRun) {
  const std::string inner = GetParam();

  // Concurrent run: 4 writer threads against one 4-shard store.
  auto concurrent = OpenSharded(inner, 4, "stress");
  {
    std::vector<std::thread> writers;
    for (int t = 0; t < kStressThreads; t++) {
      writers.emplace_back(
          [&, t] { RunDisjointStream(concurrent->store.get(), t); });
    }
    for (auto& th : writers) th.join();
  }
  {
    std::atomic<bool> writers_done{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < kStressThreads; t++) {
      writers.emplace_back(
          [&, t] { RunOverlappingStream(concurrent->store.get(), t); });
    }
    // Concurrent readers: an overlapping-range key is either absent or
    // carries exactly its key-determined value, never a torn mix.
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; r++) {
      readers.emplace_back([&, r] {
        Rng rng(0xbeef + static_cast<uint64_t>(r));
        std::string value;
        while (!writers_done.load(std::memory_order_relaxed)) {
          const uint64_t id = kOverlapBase + rng.Uniform(kOverlapKeys);
          const Status s =
              concurrent->store->Get(kv::MakeKey(id), &value);
          if (s.ok()) {
            EXPECT_EQ(value, OverlapValue(id)) << "torn read of " << id;
          } else {
            EXPECT_TRUE(s.IsNotFound()) << s.ToString();
          }
        }
      });
    }
    for (auto& th : writers) th.join();
    writers_done.store(true);
    for (auto& th : readers) th.join();
  }

  // Golden run: the SAME op streams replayed one thread at a time on a
  // fresh single-threaded store of the same sharded configuration.
  auto golden = OpenSharded(inner, 4, "golden");
  for (int t = 0; t < kStressThreads; t++) {
    RunDisjointStream(golden->store.get(), t);
  }
  for (int t = 0; t < kStressThreads; t++) {
    RunOverlappingStream(golden->store.get(), t);
  }

  const uint32_t crc =
      ChecksumAndCompare(concurrent->store.get(), golden->store.get());
  EXPECT_NE(crc, 0u);  // both streams were non-empty and hashed equal

  // The sub-batch splitting accounted every entry exactly once.
  const uint64_t expected_entries =
      static_cast<uint64_t>(kStressThreads) * kBatch *
      (static_cast<uint64_t>(kRoundsA) + kRoundsB);
  const auto stats = concurrent->store->GetStats();
  EXPECT_EQ(stats.user_puts + stats.user_deletes, expected_entries);

  ASSERT_TRUE(concurrent->store->Close().ok());
  ASSERT_TRUE(golden->store->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(Engines, ShardedStressTest,
                         ::testing::Values("lsm", "btree", "alog"));

// The debug-build epoch check: using an iterator after a write must fail
// fast instead of silently reading stale state. Compiled out with NDEBUG
// (RelWithDebInfo), active in the Debug sanitizer jobs.
#ifndef NDEBUG
using IteratorEpochDeathTest = ::testing::TestWithParam<const char*>;

TEST_P(IteratorEpochDeathTest, UseAfterWriteDiesInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  kv::RegisterBuiltinEngines();
  Harness h;
  kv::EngineOptions options;
  options.engine = GetParam();
  options.fs = &h.fs;
  auto store = *kv::OpenStore(options);
  ASSERT_TRUE(store->Put("a", "1").ok());
  ASSERT_TRUE(store->Put("b", "2").ok());
  auto it = store->NewIterator();
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  ASSERT_TRUE(store->Put("c", "3").ok());  // invalidates `it`
  EXPECT_DEATH(it->Next(), "used after a write");
}

INSTANTIATE_TEST_SUITE_P(Engines, IteratorEpochDeathTest,
                         ::testing::Values("lsm", "btree", "alog"));
#endif  // NDEBUG

// The snapshot counterpart of the epoch check: an iterator opened over a
// snapshot reads the pinned state, not the live structures, so writes —
// including range deletes that erase the very keys under the cursor —
// must NOT invalidate it. (The live NewIterator() still dies, above.)
using SnapshotIteratorSurvivalTest = ::testing::TestWithParam<const char*>;

TEST_P(SnapshotIteratorSurvivalTest, SnapshotIteratorSurvivesWrites) {
  kv::RegisterBuiltinEngines();
  Harness h;
  kv::EngineOptions options;
  options.engine = GetParam();
  options.fs = &h.fs;
  auto store = *kv::OpenStore(options);
  ASSERT_TRUE(store->Put("a", "1").ok());
  ASSERT_TRUE(store->Put("b", "2").ok());
  ASSERT_TRUE(store->Put("c", "3").ok());

  auto got = store->GetSnapshot();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  std::shared_ptr<const kv::Snapshot> snap = *std::move(got);
  kv::ReadOptions opts;
  opts.snapshot = snap.get();
  auto it = store->NewIterator(opts);
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "a");
  EXPECT_EQ(it->value(), "1");

  // Mutate hard mid-iteration: overwrite, range-delete the whole
  // keyspace, and flush so the live structures really move.
  ASSERT_TRUE(store->Put("a", "changed").ok());
  kv::WriteBatch wipe;
  wipe.DeleteRange("", "\xff");
  ASSERT_TRUE(store->Write(wipe).ok());
  ASSERT_TRUE(store->Flush().ok());

  it->Next();
  ASSERT_TRUE(it->Valid()) << "snapshot iterator died under a write";
  EXPECT_EQ(it->key(), "b");
  EXPECT_EQ(it->value(), "2");
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "c");
  it->Next();
  EXPECT_FALSE(it->Valid());
  ASSERT_TRUE(it->status().ok()) << it->status().ToString();
  it.reset();
  snap.reset();

  // Meanwhile the live view took every write.
  auto live = store->NewIterator();
  live->SeekToFirst();
  EXPECT_FALSE(live->Valid()) << "wipe did not reach the live state";
  ASSERT_TRUE(live->status().ok());
  ASSERT_TRUE(store->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(Engines, SnapshotIteratorSurvivalTest,
                         ::testing::Values("lsm", "btree", "alog"));

}  // namespace
}  // namespace ptsb
