// Unit tests for the virtual clock.
#include <gtest/gtest.h>

#include "sim/clock.h"

namespace ptsb::sim {
namespace {

TEST(SimClockTest, StartsAtZero) {
  SimClock c;
  EXPECT_EQ(c.NowNanos(), 0);
  EXPECT_EQ(c.NowSeconds(), 0.0);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock c;
  c.Advance(kNanosPerSecond);
  c.Advance(500 * kNanosPerMilli);
  EXPECT_DOUBLE_EQ(c.NowSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(c.NowMinutes(), 1.5 / 60.0);
}

TEST(SimClockTest, AdvanceToOnlyMovesForward) {
  SimClock c;
  c.AdvanceTo(100);
  EXPECT_EQ(c.NowNanos(), 100);
  c.AdvanceTo(50);
  EXPECT_EQ(c.NowNanos(), 100);
  c.AdvanceTo(200);
  EXPECT_EQ(c.NowNanos(), 200);
}

TEST(SimClockTest, Reset) {
  SimClock c;
  c.Advance(123);
  c.Reset();
  EXPECT_EQ(c.NowNanos(), 0);
}

TEST(BytesToNanosTest, MatchesBandwidthMath) {
  // 1 MiB at 1 MiB/s = 1 second.
  EXPECT_EQ(BytesToNanos(1u << 20, static_cast<double>(1u << 20)),
            kNanosPerSecond);
  // 4 KiB at 550 MB/s ~ 7.45 us.
  EXPECT_NEAR(static_cast<double>(BytesToNanos(4096, 550e6)), 7447.0, 1.0);
  EXPECT_EQ(BytesToNanos(0, 100.0), 0);
}

}  // namespace
}  // namespace ptsb::sim
