// Unit tests for src/util: Status/StatusOr, encodings, CRC32C, histogram,
// running stats, RNGs.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "util/crc32.h"
#include "util/encoding.h"
#include "util/histogram.h"
#include "util/human.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"

namespace ptsb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::IoError().IsIoError());
  EXPECT_TRUE(Status::NoSpace().IsNoSpace());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::FailedPrecondition().IsFailedPrecondition());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::IoError("disk gone"));
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsIoError());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

Status Helper(bool fail) {
  if (fail) return Status::NoSpace("full");
  return Status::OK();
}

Status UseReturnIfError(bool fail) {
  PTSB_RETURN_IF_ERROR(Helper(fail));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_TRUE(UseReturnIfError(true).IsNoSpace());
}

TEST(EncodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  std::string_view in = buf;
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xdeadbeef);
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
  EXPECT_TRUE(in.empty());
}

TEST(EncodingTest, VarintRoundTripBoundaryValues) {
  const uint64_t values[] = {0,          1,     127,
                             128,        300,   16383,
                             16384,      (1ull << 32) - 1,
                             1ull << 32, UINT64_MAX};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  std::string_view in = buf;
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(EncodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ull << 33);
  std::string_view in = buf;
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(EncodingTest, VarintRejectsTruncation) {
  std::string buf;
  PutVarint64(&buf, UINT64_MAX);
  for (size_t cut = 0; cut < buf.size(); cut++) {
    std::string_view in(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&in, &v)) << "cut=" << cut;
  }
}

TEST(EncodingTest, VarintLengthMatchesEncoding) {
  for (const uint64_t v :
       {uint64_t{0}, uint64_t{127}, uint64_t{128}, uint64_t{1} << 62,
        UINT64_MAX}) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(VarintLength(v), static_cast<int>(buf.size()));
  }
}

TEST(EncodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view in = buf;
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (iSCSI polynomial test vector).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = 0;
  crc = Crc32c(crc, data.data(), 10);
  // Incremental extension semantics: feed the rest.
  // Note: our API extends by continuing from the previous crc.
  crc = Crc32c(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc, Crc32c(data));
}

TEST(Crc32Test, MaskRoundTrip) {
  const uint32_t crc = Crc32c("some block");
  EXPECT_NE(MaskCrc(crc), crc);
  EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t i = 1; i <= 100; i++) h.Record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_NEAR(h.Median(), 50, 15);
  EXPECT_NEAR(h.Percentile(99), 99, 30);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(99), 0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  Rng rng(1);
  for (int i = 0; i < 1000; i++) {
    const double x = rng.NextDouble() * 100;
    (i < 500 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-6);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool all_same = true;
  bool any_diff_c = false;
  for (int i = 0; i < 100; i++) {
    const uint64_t va = a.Next();
    all_same &= (va == b.Next());
    any_diff_c |= (va != c.Next());
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff_c);
}

TEST(RngTest, UniformInRangeAndRoughlyBalanced) {
  Rng rng(7);
  std::map<uint64_t, int> counts;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; i++) counts[rng.Uniform(10)]++;
  ASSERT_EQ(counts.size(), 10u);
  for (const auto& [v, c] : counts) {
    EXPECT_LT(v, 10u);
    EXPECT_NEAR(c, kDraws / 10, kDraws / 50);
  }
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(9);
  int heads = 0;
  for (int i = 0; i < 100000; i++) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads, 30000, 1500);
}

TEST(RngTest, FillBytesCoversBuffer) {
  Rng rng(11);
  uint8_t buf[37];
  memset(buf, 0, sizeof(buf));
  rng.FillBytes(buf, sizeof(buf));
  int nonzero = 0;
  for (uint8_t b : buf) nonzero += (b != 0);
  EXPECT_GT(nonzero, 20);  // overwhelmingly likely
}

TEST(ZipfianTest, SkewsTowardSmallKeys) {
  ZipfianGenerator z(1000000, 0.99, 3);
  uint64_t small = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; i++) {
    if (z.Next() < 10000) small++;  // hottest 1% of the key space
  }
  // Zipf(0.99) sends far more than 1% of accesses to the hottest 1%.
  EXPECT_GT(small, kDraws / 4);
}

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator z(100, 0.8, 5);
  for (int i = 0; i < 10000; i++) EXPECT_LT(z.Next(), 100u);
}

TEST(HumanTest, Bytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(4ull << 30), "4.0 GiB");
}

TEST(HumanTest, CountAndDuration) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(1234567), "1.23 M");
  EXPECT_EQ(HumanDuration(3661), "01:01:01");
}

TEST(HumanTest, StrPrintfLongString) {
  const std::string long_part(1000, 'y');
  const std::string s = StrPrintf("x=%s", long_part.c_str());
  EXPECT_EQ(s.size(), 1002u);
}

}  // namespace
}  // namespace ptsb
