// End-to-end tests of BTreeStore: model equivalence through splits,
// evictions and checkpoints; crash recovery with and without journal;
// structural invariants; cache behavior.
#include <gtest/gtest.h>

#include <string>

#include "block/memory_device.h"
#include "btree/btree_store.h"
#include "fs/filesystem.h"
#include "test_support.h"
#include "util/random.h"

namespace ptsb::btree {
namespace {

BTreeOptions TinyOptions() {
  BTreeOptions o;
  o.leaf_max_bytes = 2 << 10;
  o.internal_max_bytes = 512;
  o.cache_bytes = 16 << 10;  // a handful of leaves
  o.checkpoint_every_bytes = 64 << 10;
  o.file_grow_bytes = 64 << 10;
  return o;
}

class BTreeStoreTest : public ::testing::Test {
 protected:
  BTreeStoreTest() : dev_(4096, 1 << 15), fs_(&dev_, {}) {}
  block::MemoryBlockDevice dev_;
  fs::SimpleFs fs_;
};

TEST_F(BTreeStoreTest, PutGetRoundTrip) {
  auto store = *BTreeStore::Open(&fs_, TinyOptions());
  ASSERT_TRUE(store->Put("hello", "world").ok());
  std::string v;
  ASSERT_TRUE(store->Get("hello", &v).ok());
  EXPECT_EQ(v, "world");
  EXPECT_TRUE(store->Get("nope", &v).IsNotFound());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, OverwriteInPlace) {
  auto store = *BTreeStore::Open(&fs_, TinyOptions());
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(store->Put("k", "v" + std::to_string(i)).ok());
  }
  std::string v;
  ASSERT_TRUE(store->Get("k", &v).ok());
  EXPECT_EQ(v, "v19");
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, DeleteRemoves) {
  auto store = *BTreeStore::Open(&fs_, TinyOptions());
  ASSERT_TRUE(store->Put("k", "v").ok());
  ASSERT_TRUE(store->Delete("k").ok());
  std::string v;
  EXPECT_TRUE(store->Get("k", &v).IsNotFound());
  // Deleting a missing key is a no-op.
  ASSERT_TRUE(store->Delete("never-existed").ok());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, SplitsGrowTheTree) {
  auto store = *BTreeStore::Open(&fs_, TinyOptions());
  const std::string value(300, 'v');
  for (int i = 0; i < 500; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(store->Put(key, value).ok());
  }
  ASSERT_TRUE(store->CheckStructure().ok());
  for (int i : {0, 250, 499}) {
    char key[16];
    snprintf(key, sizeof(key), "k%05d", i);
    std::string v;
    ASSERT_TRUE(store->Get(key, &v).ok()) << key;
    EXPECT_EQ(v, value);
  }
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, InsertBelowSmallestKeyRoutesCorrectly) {
  auto store = *BTreeStore::Open(&fs_, TinyOptions());
  const std::string value(300, 'v');
  for (int i = 1000; i < 1300; i++) {
    ASSERT_TRUE(store->Put("k" + std::to_string(i), value).ok());
  }
  // Now insert keys sorting below every existing key.
  ASSERT_TRUE(store->Put("a-first", "tiny").ok());
  ASSERT_TRUE(store->Put("", "empty-key").ok());
  std::string v;
  ASSERT_TRUE(store->Get("a-first", &v).ok());
  EXPECT_EQ(v, "tiny");
  ASSERT_TRUE(store->Get("", &v).ok());
  EXPECT_EQ(v, "empty-key");
  ASSERT_TRUE(store->CheckStructure().ok());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, MatchesReferenceModelThroughEviction) {
  auto store = *BTreeStore::Open(&fs_, TinyOptions());
  testing::ReferenceModel model;
  Rng rng(21);
  testing::RunRandomOps(store.get(), &model, &rng, 6000, 1200, 250, 0.85);
  testing::VerifyAll(store.get(), model);
  ASSERT_TRUE(store->CheckStructure().ok());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, CacheStaysBounded) {
  auto options = TinyOptions();
  options.cache_bytes = 8 << 10;
  auto store = *BTreeStore::Open(&fs_, options);
  const std::string value(200, 'v');
  Rng rng(3);
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        store->Put("k" + std::to_string(rng.Uniform(2000)), value).ok());
  }
  // Cache can transiently exceed by one leaf; never by much more.
  EXPECT_LE(store->CacheBytes(), options.cache_bytes + options.leaf_max_bytes);
  const auto stats = store->GetStats();
  EXPECT_GT(stats.page_write_bytes, 0u);  // evictions wrote dirty leaves
  EXPECT_GT(stats.page_read_bytes, 0u);   // and misses read them back
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, ReopenRecoversCheckpointedData) {
  testing::ReferenceModel model;
  {
    auto store = *BTreeStore::Open(&fs_, TinyOptions());
    Rng rng(17);
    testing::RunRandomOps(store.get(), &model, &rng, 3000, 600, 250, 0.8);
    ASSERT_TRUE(store->Close().ok());  // checkpoints
  }
  {
    auto store = *BTreeStore::Open(&fs_, TinyOptions());
    testing::VerifyAll(store.get(), model);
    ASSERT_TRUE(store->CheckStructure().ok());
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST_F(BTreeStoreTest, CrashWithoutJournalRevertsToLastCheckpoint) {
  auto options = TinyOptions();
  options.checkpoint_every_bytes = 1 << 30;  // only explicit checkpoints
  {
    auto store = *BTreeStore::Open(&fs_, options);
    ASSERT_TRUE(store->Put("durable", "yes").ok());
    ASSERT_TRUE(store->Flush().ok());  // checkpoint
    ASSERT_TRUE(store->Put("volatile", "gone").ok());
    fs_.SimulateCrash();
    store.release();  // NOLINT: crashed instance
  }
  {
    auto store = *BTreeStore::Open(&fs_, options);
    std::string v;
    ASSERT_TRUE(store->Get("durable", &v).ok());
    EXPECT_EQ(v, "yes");
    EXPECT_TRUE(store->Get("volatile", &v).IsNotFound());
    ASSERT_TRUE(store->CheckStructure().ok());
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST_F(BTreeStoreTest, CrashMidWorkloadRecoversConsistently) {
  // Without a journal, the tree must still recover to *some* consistent
  // checkpoint state (no corruption), even when the crash lands between
  // checkpoints with evicted dirty leaves on disk.
  auto options = TinyOptions();
  options.checkpoint_every_bytes = 32 << 10;
  {
    auto store = *BTreeStore::Open(&fs_, options);
    Rng rng(23);
    const std::string value(250, 'v');
    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(
          store->Put("k" + std::to_string(rng.Uniform(1000)), value).ok());
    }
    fs_.SimulateCrash();
    store.release();  // NOLINT
  }
  {
    auto store = *BTreeStore::Open(&fs_, options);
    ASSERT_TRUE(store->CheckStructure().ok());
    // Spot-read a few keys: values must be intact (well-formed, right size)
    // wherever present.
    std::string v;
    int found = 0;
    for (int i = 0; i < 1000; i++) {
      if (store->Get("k" + std::to_string(i), &v).ok()) {
        EXPECT_EQ(v.size(), 250u);
        found++;
      }
    }
    EXPECT_GT(found, 0);
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST_F(BTreeStoreTest, JournalRecoversPostCheckpointWrites) {
  auto options = TinyOptions();
  options.journal_enabled = true;
  options.journal_sync_every_bytes = 1;  // sync every record
  options.checkpoint_every_bytes = 1 << 30;
  testing::ReferenceModel model;
  {
    auto store = *BTreeStore::Open(&fs_, options);
    Rng rng(29);
    testing::RunRandomOps(store.get(), &model, &rng, 800, 300, 200, 0.8);
    fs_.SimulateCrash();
    store.release();  // NOLINT
  }
  {
    auto store = *BTreeStore::Open(&fs_, options);
    testing::VerifyAll(store.get(), model);
    ASSERT_TRUE(store->Close().ok());
  }
}

TEST_F(BTreeStoreTest, ScanReturnsSortedRange) {
  auto store = *BTreeStore::Open(&fs_, TinyOptions());
  testing::ReferenceModel model;
  Rng rng(31);
  testing::RunRandomOps(store.get(), &model, &rng, 2500, 700, 150, 0.75);
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(testing::CollectRange(store.get(), "", 100000, &got).ok());
  ASSERT_EQ(got.size(), model.size());
  auto expect = model.map().begin();
  for (const auto& [k, v] : got) {
    EXPECT_EQ(k, expect->first);
    EXPECT_EQ(v, expect->second);
    ++expect;
  }
  // Bounded scan from the middle.
  got.clear();
  ASSERT_TRUE(testing::CollectRange(store.get(), "k5", 7, &got).ok());
  EXPECT_LE(got.size(), 7u);
  for (const auto& [k, v] : got) EXPECT_GE(k, "k5");
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, CursorWalksLeavesAcrossSplitsAndEmptyPages) {
  auto store = *BTreeStore::Open(&fs_, TinyOptions());
  // Enough data to build a multi-level tree (2 KiB leaves).
  std::string value(100, 'v');
  for (int i = 0; i < 500; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(store->Put(key, value).ok());
  }
  // Empty out a whole key range mid-tree: the cursor must skip the
  // resulting empty leaves without surfacing anything.
  for (int i = 200; i < 300; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(store->Delete(key).ok());
  }
  auto it = store->NewIterator();
  int seen = 0;
  std::string prev;
  for (it->Seek("k0100"); it->Valid(); it->Next()) {
    const std::string key(it->key());
    if (!prev.empty()) {
      ASSERT_LT(prev, key);
    }
    const int id = std::stoi(key.substr(1));
    ASSERT_TRUE(id < 200 || id >= 300) << key << " was deleted";
    prev = key;
    seen++;
  }
  ASSERT_TRUE(it->status().ok());
  EXPECT_EQ(seen, 300);  // [100,200) plus [300,500)
  EXPECT_EQ(prev, "k0499");
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, BatchedWriteIsOneJournalRecord) {
  auto options = TinyOptions();
  options.journal_enabled = true;
  auto store = *BTreeStore::Open(&fs_, options);
  kv::WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(store->Write(batch).ok());
  std::string v;
  EXPECT_TRUE(store->Get("a", &v).IsNotFound());
  ASSERT_TRUE(store->Get("b", &v).ok());
  const auto stats = store->GetStats();
  EXPECT_EQ(stats.user_batches, 1u);
  EXPECT_EQ(stats.user_puts, 2u);
  EXPECT_EQ(stats.user_deletes, 1u);
  ASSERT_TRUE(store->CheckStructure().ok());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, BatchedJournalRecordsReplayAfterCrash) {
  auto options = TinyOptions();
  options.journal_enabled = true;
  options.journal_sync_every_bytes = 1;  // sync every record
  options.checkpoint_every_bytes = 8 << 20;  // rely on the journal alone
  kv::WriteBatch batch;
  {
    auto store = *BTreeStore::Open(&fs_, options);
    for (int i = 0; i < 200; i++) {
      batch.Put("k" + std::to_string(i), "v" + std::to_string(i));
      if (batch.Count() == 16) {
        ASSERT_TRUE(store->Write(batch).ok());
        batch.Clear();
      }
    }
    if (!batch.empty()) {
      ASSERT_TRUE(store->Write(batch).ok());
    }
    fs_.SimulateCrash();
    store.release();  // NOLINT: intentional leak of a "crashed" instance
  }
  auto store = *BTreeStore::Open(&fs_, options);
  std::string v;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store->Get("k" + std::to_string(i), &v).ok()) << i;
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
  ASSERT_TRUE(store->CheckStructure().ok());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, CheckpointCountsAdvance) {
  auto options = TinyOptions();
  options.checkpoint_every_bytes = 8 << 10;
  auto store = *BTreeStore::Open(&fs_, options);
  const std::string value(500, 'v');
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store->Put("k" + std::to_string(i), value).ok());
  }
  EXPECT_GT(store->checkpoint_count(), 5u);
  const auto stats = store->GetStats();
  EXPECT_GT(stats.checkpoint_bytes_written, 0u);
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, FileFootprintStaysCompactUnderOverwrites) {
  // Copy-on-write with block reuse: overwriting the same keys forever must
  // not grow the file much beyond the dataset size (the space-amplification
  // story of paper Fig. 6).
  auto store = *BTreeStore::Open(&fs_, TinyOptions());
  const std::string value(400, 'v');
  const int kKeys = 500;
  Rng rng(37);
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(store->Put("k" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  const uint64_t after_load = store->block_manager().file_bytes();
  for (int i = 0; i < 10 * kKeys; i++) {
    ASSERT_TRUE(
        store->Put("k" + std::to_string(rng.Uniform(kKeys)), value).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_LT(store->block_manager().file_bytes(), after_load * 2);
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, AppendOnlyAblationGrowsFile) {
  auto options = TinyOptions();
  options.reuse_freed_blocks = false;
  auto store = *BTreeStore::Open(&fs_, options);
  const std::string value(400, 'v');
  Rng rng(41);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store->Put("k" + std::to_string(i), value).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  const uint64_t after_load = store->block_manager().file_bytes();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(store->Put("k" + std::to_string(rng.Uniform(200)), value).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_GT(store->block_manager().file_bytes(), after_load);
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BTreeStoreTest, LargeValuesBeyondLeafMax) {
  auto store = *BTreeStore::Open(&fs_, TinyOptions());
  // A single value bigger than leaf_max_bytes: oversized one-item leaf.
  const std::string huge(5000, 'H');
  ASSERT_TRUE(store->Put("big", huge).ok());
  ASSERT_TRUE(store->Put("big2", huge).ok());
  std::string v;
  ASSERT_TRUE(store->Get("big", &v).ok());
  EXPECT_EQ(v, huge);
  ASSERT_TRUE(store->CheckStructure().ok());
  ASSERT_TRUE(store->Close().ok());
}

// Property sweep across workload shapes and cache pressure.
class BTreePropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, uint64_t>> {};

TEST_P(BTreePropertyTest, ModelEquivalence) {
  const uint64_t cache_bytes = std::get<0>(GetParam());
  const int value_bytes = std::get<1>(GetParam());
  const uint64_t seed = std::get<2>(GetParam());
  block::MemoryBlockDevice dev(4096, 1 << 15);
  fs::SimpleFs fs(&dev, {});
  auto options = TinyOptions();
  options.cache_bytes = cache_bytes;
  auto store = *BTreeStore::Open(&fs, options);
  testing::ReferenceModel model;
  Rng rng(seed);
  testing::RunRandomOps(store.get(), &model, &rng, 4000, 900, value_bytes,
                        0.8);
  testing::VerifyAll(store.get(), model);
  ASSERT_TRUE(store->CheckStructure().ok());
  ASSERT_TRUE(store->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreePropertyTest,
    ::testing::Combine(::testing::Values(4u << 10, 64u << 10),
                       ::testing::Values(30, 600),
                       ::testing::Values(51u, 52u)));

}  // namespace
}  // namespace ptsb::btree
