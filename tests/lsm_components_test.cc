// Tests for LSM building blocks: memtable skiplist, bloom filter, SST
// builder/reader/iterator, WAL framing and replay, version set/manifest.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "block/memory_device.h"
#include "fs/file.h"
#include "fs/filesystem.h"
#include "lsm/bloom.h"
#include "lsm/compaction.h"
#include "lsm/memtable.h"
#include "lsm/sst.h"
#include "lsm/version.h"
#include "lsm/wal.h"
#include "util/logging.h"
#include "util/random.h"

namespace ptsb::lsm {
namespace {

TEST(MemtableTest, AddAndGet) {
  Memtable mt;
  mt.Add("b", 1, EntryType::kPut, "vb");
  mt.Add("a", 2, EntryType::kPut, "va");
  auto r = mt.Get("a");
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "va");
  EXPECT_FALSE(mt.Get("c").found);
  EXPECT_EQ(mt.entries(), 2u);
}

TEST(MemtableTest, UpdateKeepsEveryVersion) {
  // Multi-version: an update inserts a new version instead of replacing
  // in place, so a snapshot bound can still reach the old one.
  Memtable mt;
  mt.Add("k", 1, EntryType::kPut, "v1");
  mt.Add("k", 2, EntryType::kPut, "v2");
  auto r = mt.Get("k");
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "v2");
  EXPECT_EQ(r.seq, 2u);
  EXPECT_EQ(mt.entries(), 2u);
}

TEST(MemtableTest, SequenceBoundedGet) {
  Memtable mt;
  mt.Add("k", 1, EntryType::kPut, "v1");
  mt.Add("k", 3, EntryType::kDelete, "");
  mt.Add("k", 5, EntryType::kPut, "v5");
  // Unbounded: newest version.
  EXPECT_EQ(mt.Get("k").value, "v5");
  // At the tombstone.
  auto r3 = mt.Get("k", 3);
  ASSERT_TRUE(r3.found);
  EXPECT_TRUE(r3.deleted);
  // Before the tombstone.
  auto r2 = mt.Get("k", 2);
  ASSERT_TRUE(r2.found);
  EXPECT_EQ(r2.value, "v1");
  EXPECT_EQ(r2.seq, 1u);
  // Before the key existed.
  EXPECT_FALSE(mt.Get("k", 0).found);
}

TEST(MemtableTest, TombstoneVisible) {
  Memtable mt;
  mt.Add("k", 1, EntryType::kPut, "v");
  mt.Add("k", 2, EntryType::kDelete, "");
  auto r = mt.Get("k");
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.deleted);
}

TEST(MemtableTest, IterationIsInternalOrder) {
  // Every version is iterated, in internal order: user key ascending,
  // sequence descending within one key.
  Memtable mt;
  Rng rng(1);
  std::set<std::string> keys;
  const int kN = 1000;
  for (int i = 0; i < kN; i++) {
    const std::string k = "k" + std::to_string(rng.Uniform(10000));
    keys.insert(k);
    mt.Add(k, i + 1, EntryType::kPut, "v");
  }
  Memtable::Iterator it(&mt);
  std::set<std::string> seen;
  int count = 0;
  std::string prev_key;
  SequenceNumber prev_seq = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    if (count > 0) {
      if (it.key() == prev_key) {
        EXPECT_LT(it.seq(), prev_seq);  // older versions follow newer
      } else {
        EXPECT_GT(it.key(), prev_key);
      }
    }
    prev_key = it.key();
    prev_seq = it.seq();
    seen.insert(prev_key);
    count++;
  }
  EXPECT_EQ(count, kN);    // nothing collapsed
  EXPECT_EQ(seen, keys);   // exactly the user keys written
}

TEST(MemtableTest, SeekFindsLowerBound) {
  Memtable mt;
  mt.Add("b", 1, EntryType::kPut, "");
  mt.Add("d", 2, EntryType::kPut, "");
  Memtable::Iterator it(&mt);
  it.Seek("c");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "d");
  it.Seek("e");
  EXPECT_FALSE(it.Valid());
}

TEST(MemtableTest, BytesTracked) {
  Memtable mt;
  EXPECT_EQ(mt.ApproximateBytes(), 0u);
  mt.Add("key", 1, EntryType::kPut, std::string(100, 'v'));
  const uint64_t b1 = mt.ApproximateBytes();
  EXPECT_GE(b1, 103u);
  // Updating inserts a new version: accounted bytes grow (the old version
  // stays reachable for snapshot-bounded reads until the next flush).
  mt.Add("key", 2, EntryType::kPut, "v");
  EXPECT_GT(mt.ApproximateBytes(), b1);
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; i++) keys.push_back("key" + std::to_string(i));
  for (const auto& k : keys) builder.AddKey(k);
  BloomFilter filter(builder.Finish());
  for (const auto& k : keys) EXPECT_TRUE(filter.MayContain(k));
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 10000; i++) builder.AddKey("in" + std::to_string(i));
  BloomFilter filter(builder.Finish());
  int fp = 0;
  const int kProbes = 10000;
  for (int i = 0; i < kProbes; i++) {
    if (filter.MayContain("out" + std::to_string(i))) fp++;
  }
  // 10 bits/key gives ~1% FP; allow generous margin.
  EXPECT_LT(fp, kProbes / 20);
}

TEST(BloomTest, DisabledMatchesEverything) {
  BloomFilterBuilder builder(0);
  builder.AddKey("a");
  BloomFilter filter(builder.Finish());
  EXPECT_TRUE(filter.MayContain("anything"));
  EXPECT_TRUE(filter.empty());
}

class SstTest : public ::testing::Test {
 protected:
  SstTest() : dev_(4096, 4096), fs_(&dev_, {}) {}
  block::MemoryBlockDevice dev_;
  fs::SimpleFs fs_;
};

TEST_F(SstTest, BuildAndGet) {
  fs::File* file = *fs_.Create("t.sst");
  SstBuilder builder(file, 4096, 10);
  for (int i = 0; i < 1000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(builder.Add(key, 1000 + i, EntryType::kPut,
                            "value" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.num_entries(), 1000u);
  EXPECT_EQ(builder.smallest(), "k000000");
  EXPECT_EQ(builder.largest(), "k000999");

  auto reader = SstReader::Open(file);
  ASSERT_TRUE(reader.ok());
  for (int i : {0, 1, 499, 998, 999}) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    auto r = (*reader)->Get(key);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->found) << key;
    EXPECT_EQ(r->value, "value" + std::to_string(i));
    EXPECT_EQ(r->seq, 1000u + i);
  }
  auto miss = (*reader)->Get("k9999999");
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->found);
}

TEST_F(SstTest, NewestVersionWinsWithinTable) {
  fs::File* file = *fs_.Create("t.sst");
  SstBuilder builder(file, 4096, 10);
  // Internal order: same key, descending seq.
  ASSERT_TRUE(builder.Add("k", 5, EntryType::kPut, "new").ok());
  ASSERT_TRUE(builder.Add("k", 3, EntryType::kPut, "old").ok());
  ASSERT_TRUE(builder.Finish().ok());
  auto reader = SstReader::Open(file);
  ASSERT_TRUE(reader.ok());
  auto r = (*reader)->Get("k");
  ASSERT_TRUE(r.ok() && r->found);
  EXPECT_EQ(r->value, "new");
  EXPECT_EQ(r->seq, 5u);
}

TEST_F(SstTest, TombstonesSurfaceAsDeleteType) {
  fs::File* file = *fs_.Create("t.sst");
  SstBuilder builder(file, 4096, 10);
  ASSERT_TRUE(builder.Add("k", 7, EntryType::kDelete, "").ok());
  ASSERT_TRUE(builder.Finish().ok());
  auto reader = SstReader::Open(file);
  auto r = (*reader)->Get("k");
  ASSERT_TRUE(r.ok() && r->found);
  EXPECT_EQ(r->type, EntryType::kDelete);
}

TEST_F(SstTest, IteratorWalksEverythingInOrder) {
  fs::File* file = *fs_.Create("t.sst");
  SstBuilder builder(file, 1024, 10);  // small blocks: many of them
  const int kN = 500;
  for (int i = 0; i < kN; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(
        builder.Add(key, i + 1, EntryType::kPut, std::string(50, 'x')).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  auto reader = SstReader::Open(file);
  ASSERT_TRUE(reader.ok());
  SstReader::Iterator it(reader->get());
  ASSERT_TRUE(it.SeekToFirst().ok());
  int count = 0;
  std::string prev;
  while (it.Valid()) {
    if (count > 0) {
      EXPECT_GT(it.key(), prev);
    }
    prev = it.key();
    count++;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, kN);
}

TEST_F(SstTest, IteratorSeek) {
  fs::File* file = *fs_.Create("t.sst");
  SstBuilder builder(file, 1024, 10);
  for (int i = 0; i < 100; i += 2) {  // even keys only
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(builder.Add(key, i + 1, EntryType::kPut, "v").ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  auto reader = SstReader::Open(file);
  SstReader::Iterator it(reader->get());
  ASSERT_TRUE(it.Seek("k000051").ok());  // odd: lands on 52
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "k000052");
  ASSERT_TRUE(it.Seek("k000099").ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(SstTest, CorruptBlockDetected) {
  fs::File* file = *fs_.Create("t.sst");
  SstBuilder builder(file, 4096, 10);
  for (int i = 0; i < 100; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(
        builder.Add(key, i + 1, EntryType::kPut, std::string(200, 'x')).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  // Flip a byte inside the first data block (offset 100 is data).
  std::string page(4096, '\0');
  ASSERT_TRUE(file->ReadAt(0, 4096, page.data()).ok());
  page[100] ^= 0xff;
  ASSERT_TRUE(file->WriteAt(0, page).ok());
  auto reader = SstReader::Open(file);
  ASSERT_TRUE(reader.ok());  // footer/index are intact
  auto r = (*reader)->Get("k000000");
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(SstTest, OpenRejectsGarbage) {
  fs::File* file = *fs_.Create("junk");
  ASSERT_TRUE(file->Append(std::string(8192, 'j')).ok());
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_TRUE(SstReader::Open(file).status().IsCorruption());
  fs::File* tiny = *fs_.Create("tiny");
  ASSERT_TRUE(tiny->Append("x").ok());
  EXPECT_TRUE(SstReader::Open(tiny).status().IsCorruption());
}

class WalTest : public ::testing::Test {
 protected:
  WalTest() : dev_(4096, 2048), fs_(&dev_, {}) {}
  block::MemoryBlockDevice dev_;
  fs::SimpleFs fs_;
};

TEST_F(WalTest, WriteAndReplay) {
  fs::File* file = *fs_.Create("wal");
  WalWriter writer(file, 0);
  ASSERT_TRUE(writer.Add("a", 1, EntryType::kPut, "va").ok());
  ASSERT_TRUE(writer.Add("b", 2, EntryType::kDelete, "").ok());
  ASSERT_TRUE(writer.Sync().ok());

  std::vector<std::tuple<std::string, SequenceNumber, EntryType, std::string>>
      got;
  ASSERT_TRUE(ReplayWal(file, [&](std::string_view k, SequenceNumber s,
                                  EntryType t, std::string_view v) {
                got.emplace_back(std::string(k), s, t, std::string(v));
              }).ok());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(std::get<0>(got[0]), "a");
  EXPECT_EQ(std::get<1>(got[0]), 1u);
  EXPECT_EQ(std::get<2>(got[1]), EntryType::kDelete);
}

TEST_F(WalTest, ReplayStopsAtTornTail) {
  fs::File* file = *fs_.Create("wal");
  // Small writer buffer so records reach the filesystem promptly; the
  // filesystem's own page buffering still leaves a torn tail on crash.
  WalWriter writer(file, 0, /*buffer_bytes=*/1);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(
        writer.Add("k" + std::to_string(i), i + 1, EntryType::kPut,
                   std::string(3000, 'v')).ok());
  }
  // No sync: simulate a crash that loses the buffered tail.
  fs_.SimulateCrash();
  int replayed = 0;
  ASSERT_TRUE(ReplayWal(file, [&](std::string_view, SequenceNumber,
                                  EntryType, std::string_view) {
                replayed++;
              }).ok());
  EXPECT_LT(replayed, 10);  // the torn record and later ones are dropped
  EXPECT_GE(replayed, 1);   // durable full pages replay fine
}

TEST_F(WalTest, BufferedRecordsLostWithoutFlush) {
  fs::File* file = *fs_.Create("wal");
  WalWriter writer(file, 0, /*buffer_bytes=*/64 << 10);
  ASSERT_TRUE(writer.Add("k", 1, EntryType::kPut, "small").ok());
  // Entirely buffered: nothing on the filesystem yet (RocksDB's unsynced
  // WAL semantics).
  int replayed = 0;
  ASSERT_TRUE(ReplayWal(file, [&](std::string_view, SequenceNumber,
                                  EntryType, std::string_view) {
                replayed++;
              }).ok());
  EXPECT_EQ(replayed, 0);
  // Sync makes it durable.
  ASSERT_TRUE(writer.Sync().ok());
  ASSERT_TRUE(ReplayWal(file, [&](std::string_view, SequenceNumber,
                                  EntryType, std::string_view) {
                replayed++;
              }).ok());
  EXPECT_EQ(replayed, 1);
}

TEST_F(WalTest, CorruptRecordStopsReplay) {
  fs::File* file = *fs_.Create("wal");
  WalWriter writer(file, 0);
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(writer.Add("key" + std::to_string(i), i + 1, EntryType::kPut,
                           std::string(100, 'v')).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  // Corrupt the third record's payload area.
  std::string page(4096, '\0');
  ASSERT_TRUE(file->ReadAt(0, 4096, page.data()).ok());
  page[260] ^= 0x01;
  ASSERT_TRUE(file->Extend(4096).ok());
  ASSERT_TRUE(file->WriteAt(0, page).ok());
  int replayed = 0;
  ASSERT_TRUE(ReplayWal(file, [&](std::string_view, SequenceNumber,
                                  EntryType, std::string_view) {
                replayed++;
              }).ok());
  EXPECT_LT(replayed, 5);
}

class VersionTest : public ::testing::Test {
 protected:
  VersionTest() : dev_(4096, 4096), fs_(&dev_, {}) {}

  static FileMeta MakeFile(uint64_t number, const std::string& lo,
                           const std::string& hi) {
    FileMeta f;
    f.number = number;
    f.file_bytes = 1000;
    f.num_entries = 10;
    f.smallest = lo;
    f.largest = hi;
    return f;
  }

  block::MemoryBlockDevice dev_;
  fs::SimpleFs fs_;
};

TEST_F(VersionTest, EditEncodeDecodeRoundTrip) {
  VersionEdit edit;
  edit.next_file_number = 42;
  edit.last_sequence = 1234567;
  edit.log_number = 7;
  edit.added.emplace_back(2, MakeFile(10, "aaa", "zzz"));
  edit.removed.emplace_back(1, 9);
  auto decoded = VersionEdit::Decode(edit.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded->next_file_number, 42u);
  EXPECT_EQ(*decoded->last_sequence, 1234567u);
  EXPECT_EQ(*decoded->log_number, 7u);
  ASSERT_EQ(decoded->added.size(), 1u);
  EXPECT_EQ(decoded->added[0].first, 2);
  EXPECT_EQ(decoded->added[0].second.smallest, "aaa");
  ASSERT_EQ(decoded->removed.size(), 1u);
  EXPECT_EQ(decoded->removed[0].second, 9u);
}

TEST_F(VersionTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(VersionEdit::Decode("\xff\xff\xff garbage").ok());
}

TEST_F(VersionTest, RecoverFreshThenPersist) {
  {
    VersionSet vs(&fs_, "db", 7);
    ASSERT_TRUE(vs.Recover().ok());
    VersionEdit edit;
    edit.added.emplace_back(1, MakeFile(5, "a", "m"));
    edit.added.emplace_back(1, MakeFile(6, "n", "z"));
    edit.last_sequence = 99;
    ASSERT_TRUE(vs.LogAndApply(edit).ok());
    ASSERT_TRUE(vs.CheckInvariants().ok());
  }
  {
    // A second VersionSet recovers the same state from disk.
    VersionSet vs(&fs_, "db", 7);
    ASSERT_TRUE(vs.Recover().ok());
    EXPECT_EQ(vs.LevelFiles(1).size(), 2u);
    EXPECT_EQ(vs.last_sequence(), 99u);
    EXPECT_GE(vs.NewFileNumber(), 7u);  // never reuses persisted numbers
    ASSERT_TRUE(vs.CheckInvariants().ok());
  }
}

TEST_F(VersionTest, L0OrderedNewestFirst) {
  VersionSet vs(&fs_, "db", 7);
  ASSERT_TRUE(vs.Recover().ok());
  VersionEdit edit;
  edit.added.emplace_back(0, MakeFile(3, "a", "z"));
  edit.added.emplace_back(0, MakeFile(8, "a", "z"));
  edit.added.emplace_back(0, MakeFile(5, "a", "z"));
  ASSERT_TRUE(vs.LogAndApply(edit).ok());
  const auto& l0 = vs.LevelFiles(0);
  ASSERT_EQ(l0.size(), 3u);
  EXPECT_EQ(l0[0].number, 8u);
  EXPECT_EQ(l0[1].number, 5u);
  EXPECT_EQ(l0[2].number, 3u);
}

TEST_F(VersionTest, OverlappingQuery) {
  VersionSet vs(&fs_, "db", 7);
  ASSERT_TRUE(vs.Recover().ok());
  VersionEdit edit;
  edit.added.emplace_back(2, MakeFile(1, "a", "f"));
  edit.added.emplace_back(2, MakeFile(2, "g", "m"));
  edit.added.emplace_back(2, MakeFile(3, "n", "z"));
  ASSERT_TRUE(vs.LogAndApply(edit).ok());
  EXPECT_EQ(vs.Overlapping(2, "h", "p").size(), 2u);
  EXPECT_EQ(vs.Overlapping(2, "aa", "b").size(), 1u);
  EXPECT_EQ(vs.Overlapping(2, "zz", "zzz").size(), 0u);
}

TEST_F(VersionTest, RemoveFiles) {
  VersionSet vs(&fs_, "db", 7);
  ASSERT_TRUE(vs.Recover().ok());
  VersionEdit add;
  add.added.emplace_back(1, MakeFile(1, "a", "c"));
  add.added.emplace_back(1, MakeFile(2, "d", "f"));
  ASSERT_TRUE(vs.LogAndApply(add).ok());
  VersionEdit rm;
  rm.removed.emplace_back(1, 1);
  ASSERT_TRUE(vs.LogAndApply(rm).ok());
  ASSERT_EQ(vs.LevelFiles(1).size(), 1u);
  EXPECT_EQ(vs.LevelFiles(1)[0].number, 2u);
}

TEST_F(VersionTest, ManifestRotationKeepsState) {
  VersionSet vs(&fs_, "db", 7);
  ASSERT_TRUE(vs.Recover().ok());
  // More edits than one manifest holds (kEditsPerManifest = 512).
  for (int i = 0; i < 600; i++) {
    VersionEdit edit;
    edit.added.emplace_back(
        1, MakeFile(vs.NewFileNumber(), "k" + std::to_string(i * 2),
                    "k" + std::to_string(i * 2 + 1)));
    ASSERT_TRUE(vs.LogAndApply(edit).ok());
  }
  VersionSet fresh(&fs_, "db", 7);
  ASSERT_TRUE(fresh.Recover().ok());
  EXPECT_EQ(fresh.LevelFiles(1).size(), 600u);
}

TEST(LevelMathTest, TargetsGrowByRatio) {
  LsmOptions o;
  o.l1_target_bytes = 100;
  o.level_size_ratio = 10;
  EXPECT_EQ(LevelTargetBytes(o, 1), 100u);
  EXPECT_EQ(LevelTargetBytes(o, 2), 1000u);
  EXPECT_EQ(LevelTargetBytes(o, 4), 100000u);
}

}  // namespace
}  // namespace ptsb::lsm
