// Differential testing: both engines implement kv::KVStore and are opened
// through kv::OpenStore, so identical operation streams — single puts,
// batched writes, deletes, point reads and iterator scans — must produce
// identical visible state through flushes, compactions, evictions,
// checkpoints and reopen. Also checks cross-stack accounting invariants
// (user <= host <= NAND bytes), group-commit log accounting (WAL/journal
// bytes grow sub-linearly with batch size), registry behavior, and error
// propagation from injected device faults.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "block/iostat.h"
#include "block/memory_device.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "test_support.h"
#include "util/random.h"

namespace ptsb {
namespace {

std::map<std::string, std::string> TinyLsmParams() {
  return {{"memtable_bytes", std::to_string(16 << 10)},
          {"l1_target_bytes", std::to_string(64 << 10)},
          {"sst_target_bytes", std::to_string(32 << 10)},
          {"block_bytes", "1024"}};
}

std::map<std::string, std::string> TinyBTreeParams() {
  return {{"leaf_max_bytes", std::to_string(2 << 10)},
          {"internal_max_bytes", "512"},
          {"cache_bytes", std::to_string(16 << 10)},
          {"checkpoint_every_bytes", std::to_string(64 << 10)},
          {"file_grow_bytes", std::to_string(64 << 10)}};
}

std::map<std::string, std::string> TinyParams(const std::string& engine) {
  return engine == "lsm" ? TinyLsmParams() : TinyBTreeParams();
}

struct EngineHarness {
  block::MemoryBlockDevice dev{4096, 1 << 15};
  fs::SimpleFs fs{&dev, {}};
  std::unique_ptr<kv::KVStore> store;
};

std::unique_ptr<EngineHarness> MakeEngine(
    const std::string& engine,
    std::map<std::string, std::string> extra_params = {}) {
  auto h = std::make_unique<EngineHarness>();
  kv::EngineOptions options;
  options.engine = engine;
  options.fs = &h->fs;
  options.params = TinyParams(engine);
  for (auto& [k, v] : extra_params) options.params[k] = v;
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  h->store = *std::move(opened);
  return h;
}

// Re-opens an engine on an existing harness (reopen/recovery tests).
void Reopen(EngineHarness* h, const std::string& engine) {
  kv::EngineOptions options;
  options.engine = engine;
  options.fs = &h->fs;
  options.params = TinyParams(engine);
  auto opened = kv::OpenStore(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  h->store = *std::move(opened);
}

TEST(RegistryTest, BuiltinEnginesRegisteredAndUnknownRejected) {
  kv::RegisterBuiltinEngines();
  EXPECT_TRUE(kv::EngineRegistry::Global().Contains("lsm"));
  EXPECT_TRUE(kv::EngineRegistry::Global().Contains("btree"));

  block::MemoryBlockDevice dev(4096, 1 << 14);
  fs::SimpleFs fs(&dev, {});
  kv::EngineOptions options;
  options.engine = "no-such-engine";
  options.fs = &fs;
  auto opened = kv::OpenStore(options);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument());
  // The error names what IS available.
  EXPECT_NE(opened.status().message().find("lsm"), std::string::npos);

  options.engine = "lsm";
  options.fs = nullptr;
  EXPECT_FALSE(kv::OpenStore(options).ok());
}

TEST(RegistryTest, ParamsConfigureTheEngine) {
  // A param the factory parses must change engine behavior: with the WAL
  // disabled, no wal bytes are ever accounted.
  auto h = MakeEngine("lsm", {{"wal_enabled", "0"}});
  ASSERT_TRUE(h->store->Put("k", "v").ok());
  EXPECT_EQ(h->store->GetStats().wal_bytes_written, 0u);
  ASSERT_TRUE(h->store->Close().ok());
}

// One deterministic op stream applied to both engines.
class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, EnginesAgreeOnEverything) {
  auto lsm = MakeEngine("lsm");
  auto bt = MakeEngine("btree");
  Rng rng(GetParam());
  for (int i = 0; i < 3000; i++) {
    const std::string key = "k" + std::to_string(rng.Uniform(600));
    const int pick = static_cast<int>(rng.Uniform(10));
    if (pick < 7) {
      std::string value(rng.UniformRange(1, 800), '\0');
      rng.FillBytes(value.data(), value.size());
      ASSERT_TRUE(lsm->store->Put(key, value).ok());
      ASSERT_TRUE(bt->store->Put(key, value).ok());
    } else if (pick < 9) {
      ASSERT_TRUE(lsm->store->Delete(key).ok());
      ASSERT_TRUE(bt->store->Delete(key).ok());
    } else {
      std::string a, b;
      const Status sa = lsm->store->Get(key, &a);
      const Status sb = bt->store->Get(key, &b);
      ASSERT_EQ(sa.ok(), sb.ok()) << key << " at op " << i;
      if (sa.ok()) {
        ASSERT_EQ(a, b);
      }
    }
  }
  // Full-range scans must agree exactly.
  std::vector<std::pair<std::string, std::string>> sa, sb;
  ASSERT_TRUE(lsm->store->Scan("", 100000, &sa).ok());
  ASSERT_TRUE(bt->store->Scan("", 100000, &sb).ok());
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); i++) {
    EXPECT_EQ(sa[i].first, sb[i].first);
    EXPECT_EQ(sa[i].second, sb[i].second);
  }
  ASSERT_TRUE(lsm->store->Close().ok());
  ASSERT_TRUE(bt->store->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

// The batched-API trace: randomized WriteBatch / Delete / iterator ops
// through kv::OpenStore, cross-checked between engines and against a
// reference model, with streamed iterator comparison at checkpoints.
class BatchedDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedDifferentialTest, BatchedTraceProducesIdenticalState) {
  auto lsm = MakeEngine("lsm");
  auto bt = MakeEngine("btree", {{"journal_enabled", "1"}});
  testing::ReferenceModel model;
  Rng rng(GetParam() ^ 0xbadc0ffe);

  for (int round = 0; round < 120; round++) {
    const int pick = static_cast<int>(rng.Uniform(10));
    if (pick < 6) {
      // A mixed batch of puts and deletes, applied as one Write.
      kv::WriteBatch batch;
      const size_t n = 1 + rng.Uniform(32);
      for (size_t j = 0; j < n; j++) {
        const std::string key = "k" + std::to_string(rng.Uniform(400));
        if (rng.Bernoulli(0.85)) {
          std::string value(rng.UniformRange(1, 400), '\0');
          rng.FillBytes(value.data(), value.size());
          batch.Put(key, value);
          model.Put(key, value);
        } else {
          batch.Delete(key);
          model.Delete(key);
        }
      }
      ASSERT_TRUE(lsm->store->Write(batch).ok());
      ASSERT_TRUE(bt->store->Write(batch).ok());
    } else if (pick < 8) {
      const std::string key = "k" + std::to_string(rng.Uniform(400));
      std::string a, b;
      const Status sa = lsm->store->Get(key, &a);
      const Status sb = bt->store->Get(key, &b);
      ASSERT_EQ(sa.ok(), sb.ok()) << key << " at round " << round;
      if (sa.ok()) {
        ASSERT_EQ(a, b);
      }
      const auto expected = model.Get(key);
      ASSERT_EQ(sa.ok(), expected.has_value());
      if (expected.has_value()) {
        ASSERT_EQ(a, *expected);
      }
    } else {
      // Streaming comparison from a random start key: both iterators must
      // yield the same bounded run, matching the model.
      const std::string start = "k" + std::to_string(rng.Uniform(400));
      auto ia = lsm->store->NewIterator();
      auto ib = bt->store->NewIterator();
      ia->Seek(start);
      ib->Seek(start);
      auto im = model.map().lower_bound(start);
      for (int step = 0; step < 25; step++) {
        ASSERT_EQ(ia->Valid(), ib->Valid()) << "round " << round;
        ASSERT_EQ(ia->Valid(), im != model.map().end());
        if (!ia->Valid()) break;
        EXPECT_EQ(ia->key(), ib->key());
        EXPECT_EQ(ia->value(), ib->value());
        EXPECT_EQ(std::string(ia->key()), im->first);
        EXPECT_EQ(std::string(ia->value()), im->second);
        ia->Next();
        ib->Next();
        ++im;
      }
      ASSERT_TRUE(ia->status().ok()) << ia->status().ToString();
      ASSERT_TRUE(ib->status().ok()) << ib->status().ToString();
    }
  }

  // Final full sweep via iterators (not the Scan shim).
  auto ia = lsm->store->NewIterator();
  auto ib = bt->store->NewIterator();
  ia->SeekToFirst();
  ib->SeekToFirst();
  auto im = model.map().begin();
  size_t n = 0;
  while (ia->Valid() || ib->Valid()) {
    ASSERT_EQ(ia->Valid(), ib->Valid());
    ASSERT_NE(im, model.map().end());
    EXPECT_EQ(ia->key(), ib->key());
    EXPECT_EQ(ia->value(), ib->value());
    EXPECT_EQ(std::string(ia->key()), im->first);
    ia->Next();
    ib->Next();
    ++im;
    n++;
  }
  EXPECT_EQ(n, model.size());
  ASSERT_TRUE(ia->status().ok());
  ASSERT_TRUE(ib->status().ok());

  // Stats invariants under the batched API: every entry was counted, and
  // batches were counted as submitted (Write calls), not per entry.
  for (kv::KVStore* store : {lsm->store.get(), bt->store.get()}) {
    const auto stats = store->GetStats();
    EXPECT_GT(stats.user_batches, 0u);
    EXPECT_GE(stats.user_puts + stats.user_deletes, stats.user_batches);
  }

  ASSERT_TRUE(lsm->store->Close().ok());
  ASSERT_TRUE(bt->store->Close().ok());

  // Both engines reopen to the same state (journal/WAL + checkpoint replay
  // of batched records).
  Reopen(lsm.get(), "lsm");
  Reopen(bt.get(), "btree");
  testing::VerifyAll(lsm->store.get(), model);
  testing::VerifyAll(bt->store.get(), model);
  ASSERT_TRUE(lsm->store->Close().ok());
  ASSERT_TRUE(bt->store->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedDifferentialTest,
                         ::testing::Values(11u, 12u, 13u));

// Group commit: the same logical write stream costs fewer log bytes at
// larger batch sizes (record framing amortizes), and strictly fewer than
// one-at-a-time submission.
TEST(GroupCommitTest, WalBytesGrowSubLinearlyWithBatchSize) {
  const std::map<std::string, std::string> btree_journal = {
      {"journal_enabled", "1"}};
  for (const std::string engine : {"lsm", "btree"}) {
    uint64_t prev_wal_bytes = 0;
    bool first = true;
    for (const size_t batch_size : {1u, 8u, 64u}) {
      auto h = MakeEngine(engine,
                          engine == "btree"
                              ? btree_journal
                              : std::map<std::string, std::string>{});
      kv::WriteBatch batch;
      for (uint64_t i = 0; i < 1024; i++) {
        batch.Put(kv::MakeKey(i), kv::MakeValue(i, 64));
        if (batch.Count() >= batch_size) {
          ASSERT_TRUE(h->store->Write(batch).ok());
          batch.Clear();
        }
      }
      if (!batch.empty()) {
        ASSERT_TRUE(h->store->Write(batch).ok());
      }
      const auto stats = h->store->GetStats();
      EXPECT_EQ(stats.user_puts, 1024u);
      EXPECT_GT(stats.wal_bytes_written, stats.user_bytes_written)
          << engine << " must log payload plus framing";
      if (!first) {
        EXPECT_LT(stats.wal_bytes_written, prev_wal_bytes)
            << engine << " batch=" << batch_size
            << ": group commit must amortize log framing";
      }
      prev_wal_bytes = stats.wal_bytes_written;
      first = false;
      ASSERT_TRUE(h->store->Close().ok());
    }
  }
}

TEST(DifferentialTest, EnginesAgreeAfterReopen) {
  auto lsm = MakeEngine("lsm");
  auto bt = MakeEngine("btree");
  testing::ReferenceModel model;
  Rng rng(42);
  for (int i = 0; i < 1500; i++) {
    const std::string key = "k" + std::to_string(rng.Uniform(300));
    std::string value(200, '\0');
    rng.FillBytes(value.data(), value.size());
    ASSERT_TRUE(lsm->store->Put(key, value).ok());
    ASSERT_TRUE(bt->store->Put(key, value).ok());
    model.Put(key, value);
  }
  ASSERT_TRUE(lsm->store->Close().ok());
  ASSERT_TRUE(bt->store->Close().ok());
  Reopen(lsm.get(), "lsm");
  Reopen(bt.get(), "btree");
  testing::VerifyAll(lsm->store.get(), model);
  testing::VerifyAll(bt->store.get(), model);
  ASSERT_TRUE(lsm->store->Close().ok());
  ASSERT_TRUE(bt->store->Close().ok());
}

// Full-stack accounting invariant: user bytes <= host bytes <= NAND bytes
// (write amplification can never be < 1 at either layer).
TEST(StackInvariantTest, WriteAmplificationLayersNest) {
  sim::SimClock clock;
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 64 << 20;
  cfg.geometry.hardware_op_frac = 0.15;
  ssd::SsdDevice dev(cfg, &clock);
  block::IoStatCollector io(&dev);
  fs::SimpleFs fs(&io, {});
  kv::EngineOptions options;
  options.engine = "lsm";
  options.fs = &fs;
  options.clock = &clock;
  options.params = TinyLsmParams();
  auto store = *kv::OpenStore(options);
  Rng rng(7);
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(store
                    ->Put("key" + std::to_string(rng.Uniform(500)),
                          std::string(600, 'v'))
                    .ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  const auto engine = store->GetStats();
  const auto host = io.counters();
  const auto smart = dev.smart();
  EXPECT_LE(engine.user_bytes_written, host.write_bytes);
  EXPECT_LE(host.write_bytes, smart.nand_bytes_written);
  EXPECT_EQ(host.write_bytes, smart.host_bytes_written);
  ASSERT_TRUE(store->Close().ok());
}

TEST(FaultInjectionTest, LsmSurfacesDeviceWriteErrors) {
  EngineHarness h;
  kv::EngineOptions options;
  options.engine = "lsm";
  options.fs = &h.fs;
  options.params = TinyLsmParams();
  options.params["wal_buffer_bytes"] = "1";  // write-through: faults hit now
  auto store = *kv::OpenStore(options);
  std::string value(8000, 'v');  // spans pages: reaches the device now
  ASSERT_TRUE(store->Put("a", value).ok());
  h.dev.FailNextWrites(1);
  Status s = store->Put("b", value);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

TEST(FaultInjectionTest, BTreeSurfacesCheckpointErrors) {
  auto h = MakeEngine("btree");
  ASSERT_TRUE(h->store->Put("a", std::string(500, 'v')).ok());
  h->dev.FailNextWrites(1);
  Status s = h->store->Flush();  // checkpoint must write pages
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

TEST(FaultInjectionTest, EnginesFailCleanlyWhenDeviceFull) {
  // A device far too small for the workload: both engines must surface
  // NoSpace without aborting.
  for (const std::string engine : {"lsm", "btree"}) {
    block::MemoryBlockDevice dev(4096, 256);  // 1 MiB
    fs::SimpleFs fs(&dev, {});
    kv::EngineOptions options;
    options.engine = engine;
    options.fs = &fs;
    options.params = TinyParams(engine);
    auto store = *kv::OpenStore(options);
    Status s = Status::OK();
    std::string value(900, 'v');
    for (int i = 0; i < 4000 && s.ok(); i++) {
      s = store->Put("k" + std::to_string(i), value);
    }
    EXPECT_TRUE(s.IsNoSpace())
        << "engine=" << engine << " got: " << s.ToString();
  }
}

}  // namespace
}  // namespace ptsb
