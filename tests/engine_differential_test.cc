// Differential testing: every registered engine implements kv::KVStore and
// is opened through kv::OpenStore, so identical operation streams — single
// puts, batched writes, deletes, point reads and iterator scans — must
// produce identical visible state through flushes, compactions, evictions,
// checkpoints, segment GC and reopen. The traces run across ALL registered
// engine names and compare them pairwise, so a new engine (e.g. "alog")
// inherits the full battery just by registering. Also checks cross-stack
// accounting invariants (user <= host <= NAND bytes), group-commit log
// accounting (WAL/journal bytes grow sub-linearly with batch size),
// write-path semantics (empty batches, duplicate keys in one batch, crash
// replay of batch records), registry behavior, and error propagation from
// injected device faults.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "block/iostat.h"
#include "block/memory_device.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "test_support.h"
#include "util/random.h"

namespace ptsb {
namespace {

std::map<std::string, std::string> TinyLsmParams() {
  return {{"memtable_bytes", std::to_string(16 << 10)},
          {"l1_target_bytes", std::to_string(64 << 10)},
          {"sst_target_bytes", std::to_string(32 << 10)},
          {"block_bytes", "1024"}};
}

std::map<std::string, std::string> TinyBTreeParams() {
  return {{"leaf_max_bytes", std::to_string(2 << 10)},
          {"internal_max_bytes", "512"},
          {"cache_bytes", std::to_string(16 << 10)},
          {"checkpoint_every_bytes", std::to_string(64 << 10)},
          {"file_grow_bytes", std::to_string(64 << 10)}};
}

std::map<std::string, std::string> TinyAlogParams() {
  return {{"segment_bytes", std::to_string(16 << 10)},
          {"gc_trigger", "0.4"}};
}

// Tiny structural sizes per engine so every mechanism (flush, compaction,
// eviction, checkpoint, segment GC) fires within a few thousand ops.
// Unknown (future) engines run on their defaults.
std::map<std::string, std::string> TinyParams(const std::string& engine) {
  if (engine == "lsm") return TinyLsmParams();
  if (engine == "btree") return TinyBTreeParams();
  if (engine == "alog") return TinyAlogParams();
  return {};
}

// One entry of the pairwise battery: a registry engine name plus the
// params to open it with. The battery runs every registered engine AND
// the sharded front end over each inner engine, so the router's
// batch-splitting, merge iterator and per-shard recovery are held to the
// same visible-state contract as the engines themselves.
struct EngineConfig {
  std::string label;   // unique name for failure messages
  std::string engine;  // registry name
  std::map<std::string, std::string> params;
};

std::vector<EngineConfig> AllEngineConfigs() {
  kv::RegisterBuiltinEngines();
  std::vector<EngineConfig> configs;
  for (const std::string& name : kv::EngineRegistry::Global().Names()) {
    if (name == "sharded" || name == "cached") {
      continue;  // wrappers are covered per inner engine below
    }
    configs.push_back({name, name, TinyParams(name)});
  }
  for (const std::string inner : {"lsm", "btree", "alog"}) {
    std::map<std::string, std::string> params = TinyParams(inner);
    params["shards"] = "3";
    params["inner_engine"] = inner;
    configs.push_back({"sharded/" + inner, "sharded", std::move(params)});
  }
  // One queue_depth > 1 config. In the untimed harnesses (no SimClock)
  // it degenerates to the synchronous dispatch — the async path requires
  // a clock — so here it covers param parsing/passthrough only; the
  // timed AsyncWriteEquivalenceTest below runs this same config WITH a
  // clock, where Write really routes through WriteAsyncDispatch.
  {
    std::map<std::string, std::string> params = TinyParams("alog");
    params["shards"] = "3";
    params["inner_engine"] = "alog";
    params["queue_depth"] = "4";
    params["read_queue_depth"] = "4";
    configs.push_back({"sharded-async/alog", "sharded", std::move(params)});
  }
  // The partitioned-subcompaction path: the same lsm engine with every
  // picked compaction split four ways across background lanes. Running
  // it as its own battery entry holds K=4 to the identical visible
  // state as K=1 (and every other engine) through the whole pairwise
  // trace set.
  {
    std::map<std::string, std::string> params = TinyLsmParams();
    params["compaction_parallelism"] = "4";
    configs.push_back({"lsm-subcompact", "lsm", std::move(params)});
  }
  // The cached wrapper over every bare engine: write buffer + read cache
  // in front, so the buffer merge iterator, tombstone shadowing and
  // flush-then-read paths are pairwise-checked against the engines they
  // wrap. Both cache policies get coverage across the inner engines.
  for (const std::string inner : {"lsm", "btree", "alog"}) {
    std::map<std::string, std::string> params = TinyParams(inner);
    params["inner_engine"] = inner;
    params["write_buffer_bytes"] = std::to_string(16 << 10);
    params["read_cache_bytes"] = std::to_string(32 << 10);
    params["read_cache_policy"] = inner == "lsm" ? "lru" : "2q";
    configs.push_back({"cached/" + inner, "cached", std::move(params)});
  }
  return configs;
}

// The engine that actually persists data for a config (the inner engine
// for sharded configs) — durability and journal knobs belong to it and
// pass through the router untouched.
std::string BaseEngine(const EngineConfig& config) {
  if (config.engine == "sharded" || config.engine == "cached") {
    return config.params.at("inner_engine");
  }
  return config.engine;
}

// Overrides that make every write durable the moment Write returns, so a
// SimulateCrash + reopen must recover it (journal on + sync per record).
std::map<std::string, std::string> DurableParams(const EngineConfig& config) {
  // The cached wrapper's own durability log is what guards buffered (and
  // even already-flushed-but-inner-unsynced) writes; syncing it per
  // record makes every Write durable regardless of the inner engine's
  // own cadence.
  if (config.engine == "cached") return {{"log_sync_every_bytes", "1"}};
  const std::string base = BaseEngine(config);
  if (base == "lsm") return {{"wal_sync_every_bytes", "1"}};
  if (base == "btree") {
    return {{"journal_enabled", "1"}, {"journal_sync_every_bytes", "1"}};
  }
  if (base == "alog") return {{"sync_every_bytes", "1"}};
  return {};
}

// The B+Tree journal is the analog of the WAL/segment log: turn it on so
// reopen recovers un-checkpointed batches like the other engines do.
std::map<std::string, std::string> JournalParams(const EngineConfig& config) {
  if (BaseEngine(config) == "btree") return {{"journal_enabled", "1"}};
  return {};
}

struct EngineHarness {
  block::MemoryBlockDevice dev{4096, 1 << 15};
  fs::SimpleFs fs{&dev, {}};
  std::unique_ptr<kv::KVStore> store;
};

std::unique_ptr<EngineHarness> MakeEngine(
    const EngineConfig& config,
    std::map<std::string, std::string> extra_params = {}) {
  auto h = std::make_unique<EngineHarness>();
  kv::EngineOptions options;
  options.engine = config.engine;
  options.fs = &h->fs;
  options.params = config.params;
  for (auto& [k, v] : extra_params) options.params[k] = v;
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << config.label << ": "
                           << opened.status().ToString();
  h->store = *std::move(opened);
  return h;
}

// Re-opens an engine on an existing harness (reopen/recovery tests).
void Reopen(EngineHarness* h, const EngineConfig& config,
            std::map<std::string, std::string> extra_params = {}) {
  kv::EngineOptions options;
  options.engine = config.engine;
  options.fs = &h->fs;
  options.params = config.params;
  for (auto& [k, v] : extra_params) options.params[k] = v;
  auto opened = kv::OpenStore(options);
  ASSERT_TRUE(opened.ok()) << config.label << ": "
                           << opened.status().ToString();
  h->store = *std::move(opened);
}

TEST(RegistryTest, BuiltinEnginesRegisteredAndUnknownRejected) {
  kv::RegisterBuiltinEngines();
  EXPECT_TRUE(kv::EngineRegistry::Global().Contains("lsm"));
  EXPECT_TRUE(kv::EngineRegistry::Global().Contains("btree"));
  EXPECT_TRUE(kv::EngineRegistry::Global().Contains("alog"));
  EXPECT_TRUE(kv::EngineRegistry::Global().Contains("sharded"));

  block::MemoryBlockDevice dev(4096, 1 << 14);
  fs::SimpleFs fs(&dev, {});
  kv::EngineOptions options;
  options.engine = "no-such-engine";
  options.fs = &fs;
  auto opened = kv::OpenStore(options);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument());
  // The error names what IS available.
  EXPECT_NE(opened.status().message().find("lsm"), std::string::npos);
  EXPECT_NE(opened.status().message().find("alog"), std::string::npos);

  options.engine = "lsm";
  options.fs = nullptr;
  EXPECT_FALSE(kv::OpenStore(options).ok());
}

TEST(RegistryTest, ParamsConfigureTheEngine) {
  // A param the factory parses must change engine behavior: with the WAL
  // disabled, no wal bytes are ever accounted.
  auto h = MakeEngine({"lsm", "lsm", TinyLsmParams()}, {{"wal_enabled", "0"}});
  ASSERT_TRUE(h->store->Put("k", "v").ok());
  EXPECT_EQ(h->store->GetStats().wal_bytes_written, 0u);
  ASSERT_TRUE(h->store->Close().ok());
}

TEST(RegistryTest, ParamAccessorsRejectMalformedValues) {
  kv::EngineOptions o;
  o.params = {{"neg", "-1"},          {"ok", "123"},
              {"junk", "12x"},        {"big", "4294967296"},
              {"toolow", "-2147483649"}, {"negint", "-7"},
              {"frac", "0.25"},
              {"huge", "99999999999999999999999"}};
  // strtoull would happily wrap "-1" to 2^64-1; the accessor must warn and
  // keep the default instead of running with a garbage configuration.
  EXPECT_EQ(kv::ParamUint64(o, "neg", 7), 7u);
  EXPECT_EQ(kv::ParamUint64(o, "ok", 7), 123u);
  EXPECT_EQ(kv::ParamUint64(o, "junk", 7), 7u);
  EXPECT_EQ(kv::ParamUint64(o, "missing", 7), 7u);
  // strtoull clamps overflow to 2^64-1 with ERANGE; that too must fall
  // back to the default rather than run with a garbage value.
  EXPECT_EQ(kv::ParamUint64(o, "huge", 7), 7u);
  EXPECT_EQ(kv::ParamInt64(o, "huge", 5), 5);
  // Values that parse as int64 but truncate when narrowed to int fall
  // back to the default rather than wrapping.
  EXPECT_EQ(kv::ParamInt(o, "big", 5), 5);
  EXPECT_EQ(kv::ParamInt(o, "toolow", 5), 5);
  EXPECT_EQ(kv::ParamInt(o, "negint", 5), -7);
  EXPECT_EQ(kv::ParamInt64(o, "big", 5), 4294967296);
  EXPECT_EQ(kv::ParamInt64(o, "negint", 5), -7);
  EXPECT_DOUBLE_EQ(kv::ParamDouble(o, "frac", 1.0), 0.25);
  EXPECT_DOUBLE_EQ(kv::ParamDouble(o, "junk", 1.0), 1.0);
  EXPECT_TRUE(kv::ParamBool(o, "junk", true));
}

// One deterministic op stream applied to every registered engine; all
// pairs must agree at every probe.
class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, EnginesAgreeOnEverything) {
  const std::vector<EngineConfig> configs = AllEngineConfigs();
  ASSERT_GE(configs.size(), 6u);
  std::vector<std::unique_ptr<EngineHarness>> engines;
  for (const EngineConfig& c : configs) engines.push_back(MakeEngine(c));

  Rng rng(GetParam());
  for (int i = 0; i < 3000; i++) {
    const std::string key = "k" + std::to_string(rng.Uniform(600));
    const int pick = static_cast<int>(rng.Uniform(10));
    if (pick < 7) {
      std::string value(rng.UniformRange(1, 800), '\0');
      rng.FillBytes(value.data(), value.size());
      for (auto& h : engines) {
        ASSERT_TRUE(h->store->Put(key, value).ok());
      }
    } else if (pick < 9) {
      for (auto& h : engines) {
        ASSERT_TRUE(h->store->Delete(key).ok());
      }
    } else {
      std::string a;
      const Status sa = engines[0]->store->Get(key, &a);
      for (size_t e = 1; e < engines.size(); e++) {
        std::string b;
        const Status sb = engines[e]->store->Get(key, &b);
        ASSERT_EQ(sa.ok(), sb.ok())
            << configs[0].label << " vs " << configs[e].label << ": " << key
            << " at op " << i;
        if (sa.ok()) {
          ASSERT_EQ(a, b) << configs[0].label << " vs " << configs[e].label;
        }
      }
    }
  }
  // Full-range scans must agree exactly, pairwise.
  std::vector<std::pair<std::string, std::string>> first;
  ASSERT_TRUE(
      testing::CollectRange(engines[0]->store.get(), "", 100000, &first)
          .ok());
  for (size_t e = 1; e < engines.size(); e++) {
    std::vector<std::pair<std::string, std::string>> other;
    ASSERT_TRUE(
        testing::CollectRange(engines[e]->store.get(), "", 100000, &other)
            .ok());
    ASSERT_EQ(first.size(), other.size())
        << configs[0].label << " vs " << configs[e].label;
    for (size_t i = 0; i < first.size(); i++) {
      EXPECT_EQ(first[i].first, other[i].first) << configs[e].label;
      EXPECT_EQ(first[i].second, other[i].second) << configs[e].label;
    }
  }
  for (auto& h : engines) {
    ASSERT_TRUE(h->store->Close().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

// The batched-API trace: randomized WriteBatch / Delete / iterator ops
// through kv::OpenStore, cross-checked across every registered engine and
// against a reference model, with streamed iterator comparison at
// checkpoints.
class BatchedDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedDifferentialTest, BatchedTraceProducesIdenticalState) {
  const std::vector<EngineConfig> configs = AllEngineConfigs();
  std::vector<std::unique_ptr<EngineHarness>> engines;
  for (const EngineConfig& c : configs) {
    engines.push_back(MakeEngine(c, JournalParams(c)));
  }
  testing::ReferenceModel model;
  Rng rng(GetParam() ^ 0xbadc0ffe);

  for (int round = 0; round < 120; round++) {
    const int pick = static_cast<int>(rng.Uniform(10));
    if (pick < 6) {
      // A mixed batch of puts and deletes, applied as one Write. Keys can
      // repeat within a batch: last entry must win everywhere.
      kv::WriteBatch batch;
      const size_t n = 1 + rng.Uniform(32);
      for (size_t j = 0; j < n; j++) {
        const std::string key = "k" + std::to_string(rng.Uniform(400));
        if (rng.Bernoulli(0.85)) {
          std::string value(rng.UniformRange(1, 400), '\0');
          rng.FillBytes(value.data(), value.size());
          batch.Put(key, value);
          model.Put(key, value);
        } else {
          batch.Delete(key);
          model.Delete(key);
        }
      }
      for (auto& h : engines) {
        ASSERT_TRUE(h->store->Write(batch).ok());
      }
    } else if (pick < 8) {
      const std::string key = "k" + std::to_string(rng.Uniform(400));
      const auto expected = model.Get(key);
      for (size_t e = 0; e < engines.size(); e++) {
        std::string got;
        const Status s = engines[e]->store->Get(key, &got);
        ASSERT_EQ(s.ok(), expected.has_value())
            << configs[e].label << ": " << key << " at round " << round;
        if (expected.has_value()) {
          ASSERT_EQ(got, *expected) << configs[e].label;
        }
      }
    } else {
      // Streaming comparison from a random start key: every engine's
      // iterator must yield the same bounded run, matching the model.
      const std::string start = "k" + std::to_string(rng.Uniform(400));
      std::vector<std::unique_ptr<kv::KVStore::Iterator>> iters;
      for (auto& h : engines) {
        iters.push_back(h->store->NewIterator());
        iters.back()->Seek(start);
      }
      auto im = model.map().lower_bound(start);
      for (int step = 0; step < 25; step++) {
        const bool model_valid = im != model.map().end();
        for (size_t e = 0; e < engines.size(); e++) {
          ASSERT_EQ(iters[e]->Valid(), model_valid)
              << configs[e].label << " round " << round << " step " << step;
        }
        if (!model_valid) break;
        for (size_t e = 0; e < engines.size(); e++) {
          EXPECT_EQ(iters[e]->key(), im->first) << configs[e].label;
          EXPECT_EQ(iters[e]->value(), im->second) << configs[e].label;
          iters[e]->Next();
        }
        ++im;
      }
      for (size_t e = 0; e < engines.size(); e++) {
        ASSERT_TRUE(iters[e]->status().ok())
            << configs[e].label << ": " << iters[e]->status().ToString();
      }
    }
  }

  // Final full sweep via iterators (not the Scan shim).
  {
    std::vector<std::unique_ptr<kv::KVStore::Iterator>> iters;
    for (auto& h : engines) {
      iters.push_back(h->store->NewIterator());
      iters.back()->SeekToFirst();
    }
    size_t n = 0;
    for (auto im = model.map().begin(); im != model.map().end(); ++im, n++) {
      for (size_t e = 0; e < engines.size(); e++) {
        ASSERT_TRUE(iters[e]->Valid()) << configs[e].label << " ended early at " << n;
        EXPECT_EQ(iters[e]->key(), im->first) << configs[e].label;
        EXPECT_EQ(iters[e]->value(), im->second) << configs[e].label;
        iters[e]->Next();
      }
    }
    for (size_t e = 0; e < engines.size(); e++) {
      EXPECT_FALSE(iters[e]->Valid()) << configs[e].label << " has phantom keys";
      ASSERT_TRUE(iters[e]->status().ok());
    }
    EXPECT_EQ(n, model.size());
  }

  // Stats invariants under the batched API: every entry was counted, and
  // batches were counted as submitted (Write calls), not per entry.
  for (size_t e = 0; e < engines.size(); e++) {
    const auto stats = engines[e]->store->GetStats();
    EXPECT_GT(stats.user_batches, 0u) << configs[e].label;
    EXPECT_GE(stats.user_puts + stats.user_deletes, stats.user_batches)
        << configs[e].label;
  }

  // Every engine reopens to the same state (journal/WAL/segment replay of
  // batched records plus checkpointed state).
  for (size_t e = 0; e < engines.size(); e++) {
    ASSERT_TRUE(engines[e]->store->Close().ok()) << configs[e].label;
    Reopen(engines[e].get(), configs[e]);
    testing::VerifyAll(engines[e]->store.get(), model);
    ASSERT_TRUE(engines[e]->store->Close().ok()) << configs[e].label;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedDifferentialTest,
                         ::testing::Values(11u, 12u, 13u));

// ---- DeleteRange differential battery ---------------------------------
//
// Interleaved DeleteRange / Put / Delete / snapshot trace, cross-checked
// against the reference model in every engine config. Range deletes ride
// inside mixed WriteBatches (the codec, write-group merge and replay
// paths all see them between puts), snapshots taken mid-trace must keep
// serving their frozen state through later range deletes, and the final
// state must survive reopen.
class DeleteRangeDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(DeleteRangeDifferentialTest, RangeDeletesMatchModelEverywhere) {
  const std::vector<EngineConfig> configs = AllEngineConfigs();
  std::vector<std::unique_ptr<EngineHarness>> engines;
  for (const EngineConfig& c : configs) {
    engines.push_back(MakeEngine(c, JournalParams(c)));
  }
  testing::ReferenceModel model;
  Rng rng(GetParam() ^ 0xde1e7e);

  // One frozen (snapshot, model copy) pair per engine, taken mid-trace.
  std::vector<std::shared_ptr<const kv::Snapshot>> snaps(engines.size());
  std::map<std::string, std::string> frozen;

  for (int round = 0; round < 100; round++) {
    const int pick = static_cast<int>(rng.Uniform(10));
    if (pick < 5) {
      // Mixed batch: puts, deletes AND range deletes in one Write.
      kv::WriteBatch batch;
      const size_t n = 1 + rng.Uniform(16);
      for (size_t j = 0; j < n; j++) {
        const std::string key = "k" + std::to_string(rng.Uniform(400));
        if (rng.Bernoulli(0.8)) {
          std::string value(rng.UniformRange(1, 300), '\0');
          rng.FillBytes(value.data(), value.size());
          batch.Put(key, value);
          model.Put(key, value);
        } else {
          batch.Delete(key);
          model.Delete(key);
        }
      }
      if (rng.Bernoulli(0.5)) {
        // Lexicographic bounds ("k10" < "k5"): any begin < end pair is a
        // valid range; the model erases with identical string compares.
        const std::string a = "k" + std::to_string(rng.Uniform(400));
        const std::string b = "k" + std::to_string(rng.Uniform(400));
        const std::string& begin = a < b ? a : b;
        const std::string& end = a < b ? b : a;
        batch.DeleteRange(begin, end);
        model.DeleteRange(begin, end);
      }
      for (auto& h : engines) {
        ASSERT_TRUE(h->store->Write(batch).ok()) << "round " << round;
      }
    } else if (pick < 7) {
      // A bare range delete as its own batch (its own log record).
      const std::string a = "k" + std::to_string(rng.Uniform(400));
      const std::string b = "k" + std::to_string(rng.Uniform(400));
      const std::string& begin = a < b ? a : b;
      const std::string& end = a < b ? b : a;
      kv::WriteBatch batch;
      batch.DeleteRange(begin, end);
      model.DeleteRange(begin, end);
      for (auto& h : engines) {
        ASSERT_TRUE(h->store->Write(batch).ok()) << "round " << round;
      }
    } else if (pick < 9) {
      const std::string key = "k" + std::to_string(rng.Uniform(400));
      const auto expected = model.Get(key);
      for (size_t e = 0; e < engines.size(); e++) {
        std::string got;
        const Status s = engines[e]->store->Get(key, &got);
        ASSERT_EQ(s.ok(), expected.has_value())
            << configs[e].label << ": " << key << " at round " << round;
        if (expected.has_value()) {
          ASSERT_EQ(got, *expected);
        }
      }
    } else if (round == 50 || !snaps[0]) {
      // Freeze the state once, roughly mid-trace: later range deletes
      // must not leak into these snapshots.
      frozen = model.map();
      for (size_t e = 0; e < engines.size(); e++) {
        auto got = engines[e]->store->GetSnapshot();
        ASSERT_TRUE(got.ok()) << configs[e].label;
        snaps[e] = *std::move(got);
      }
    }
  }

  // Live state: full sweep against the model, per engine.
  for (size_t e = 0; e < engines.size(); e++) {
    auto it = engines[e]->store->NewIterator();
    it->SeekToFirst();
    for (auto im = model.map().begin(); im != model.map().end(); ++im) {
      ASSERT_TRUE(it->Valid()) << configs[e].label << " lost " << im->first;
      EXPECT_EQ(it->key(), im->first) << configs[e].label;
      EXPECT_EQ(it->value(), im->second) << configs[e].label;
      it->Next();
    }
    EXPECT_FALSE(it->Valid()) << configs[e].label << " has phantom keys";
    ASSERT_TRUE(it->status().ok()) << configs[e].label;
  }

  // Snapshots still serve the frozen state despite every DeleteRange
  // (and flush/compaction/GC) that ran since.
  for (size_t e = 0; e < engines.size(); e++) {
    ASSERT_TRUE(snaps[e] != nullptr) << configs[e].label;
    kv::ReadOptions opts;
    opts.snapshot = snaps[e].get();
    auto it = engines[e]->store->NewIterator(opts);
    it->SeekToFirst();
    for (auto im = frozen.begin(); im != frozen.end(); ++im) {
      ASSERT_TRUE(it->Valid())
          << configs[e].label << " snapshot lost " << im->first;
      EXPECT_EQ(it->key(), im->first) << configs[e].label;
      EXPECT_EQ(it->value(), im->second) << configs[e].label;
      it->Next();
    }
    EXPECT_FALSE(it->Valid())
        << configs[e].label << " snapshot leaked later state";
    ASSERT_TRUE(it->status().ok()) << configs[e].label;
    it.reset();
    snaps[e].reset();
  }

  // Range deletes survive reopen (checkpointed or replayed from the log).
  for (size_t e = 0; e < engines.size(); e++) {
    ASSERT_TRUE(engines[e]->store->Close().ok()) << configs[e].label;
    Reopen(engines[e].get(), configs[e], JournalParams(configs[e]));
    testing::VerifyAll(engines[e]->store.get(), model);
    auto it = engines[e]->store->NewIterator();
    size_t n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
    EXPECT_EQ(n, model.size())
        << configs[e].label << " resurrected range-deleted keys on reopen";
    ASSERT_TRUE(engines[e]->store->Close().ok()) << configs[e].label;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeleteRangeDifferentialTest,
                         ::testing::Values(21u, 22u, 23u));

// DeleteRange edge cases: empty and inverted ranges normalize to no-ops
// at batch build time (uniformly, so every engine and codec agrees by
// construction), and a full-keyspace range empties every engine.
TEST(DeleteRangeEdgeCaseTest, EmptyAndInvertedRangesAreBuildTimeNoOps) {
  kv::WriteBatch batch;
  batch.DeleteRange("b", "b");  // empty
  EXPECT_EQ(batch.Count(), 0u);
  batch.DeleteRange("z", "a");  // inverted
  EXPECT_EQ(batch.Count(), 0u);
  EXPECT_TRUE(batch.empty());

  // Writing the normalized batch is the empty-batch no-op everywhere.
  for (const EngineConfig& config : AllEngineConfigs()) {
    auto h = MakeEngine(config, DurableParams(config));
    ASSERT_TRUE(h->store->Put("b", "survivor").ok()) << config.label;
    const auto before = h->store->GetStats();
    ASSERT_TRUE(h->store->Write(batch).ok()) << config.label;
    const auto after = h->store->GetStats();
    EXPECT_EQ(after.user_batches, before.user_batches) << config.label;
    EXPECT_EQ(after.wal_bytes_written, before.wal_bytes_written)
        << config.label;
    std::string v;
    ASSERT_TRUE(h->store->Get("b", &v).ok())
        << config.label << " empty/inverted range deleted a key";
    EXPECT_EQ(v, "survivor") << config.label;
    ASSERT_TRUE(h->store->Close().ok()) << config.label;
  }
}

TEST(DeleteRangeEdgeCaseTest, FullKeyspaceRangeEmptiesEveryEngine) {
  for (const EngineConfig& config : AllEngineConfigs()) {
    const std::string& label = config.label;
    auto h = MakeEngine(config, DurableParams(config));
    Rng rng(0xf0ll);
    for (int i = 0; i < 300; i++) {
      ASSERT_TRUE(h->store
                      ->Put("k" + std::to_string(rng.Uniform(120)),
                            "v" + std::to_string(i))
                      .ok())
          << label;
    }
    ASSERT_TRUE(h->store->Flush().ok()) << label;
    // [ "", 0xff ) covers every key the trace can produce.
    kv::WriteBatch batch;
    batch.DeleteRange("", "\xff");
    ASSERT_TRUE(h->store->Write(batch).ok()) << label;
    auto it = h->store->NewIterator();
    it->SeekToFirst();
    EXPECT_FALSE(it->Valid()) << label << " survived a full-keyspace delete";
    ASSERT_TRUE(it->status().ok()) << label;
    it.reset();
    std::string v;
    EXPECT_TRUE(h->store->Get("k1", &v).IsNotFound()) << label;
    // Emptiness survives a crash + reopen (the range record replays).
    h->fs.SimulateCrash();
    h->store.release();  // NOLINT: intentional leak of a "crashed" instance
    Reopen(h.get(), config, DurableParams(config));
    auto it2 = h->store->NewIterator();
    it2->SeekToFirst();
    EXPECT_FALSE(it2->Valid()) << label << " resurrected keys on reopen";
    ASSERT_TRUE(it2->status().ok()) << label;
    it2.reset();
    // New writes land normally after the wipe.
    ASSERT_TRUE(h->store->Put("fresh", "value").ok()) << label;
    ASSERT_TRUE(h->store->Get("fresh", &v).ok()) << label;
    EXPECT_EQ(v, "value") << label;
    ASSERT_TRUE(h->store->Close().ok()) << label;
  }
}

// MultiGet is Get, batched: for every registered engine config, the
// statuses and values must match per-key Gets exactly — present keys,
// missing keys and deleted keys alike — and the result order must follow
// the input order (including duplicates). The untimed harness exercises
// the sequential fallback; the timed fan-out path is covered by
// MultiGetFanOutMatchesGetsWhenTimed below and async_io_test.
TEST(MultiGetTest, MatchesPerKeyGetsInEveryEngine) {
  for (const EngineConfig& config : AllEngineConfigs()) {
    const std::string& engine = config.label;
    auto h = MakeEngine(config);
    Rng rng(0x5eed ^ std::hash<std::string>{}(engine));
    for (int i = 0; i < 600; i++) {
      const std::string key = "k" + std::to_string(rng.Uniform(150));
      if (rng.Bernoulli(0.8)) {
        ASSERT_TRUE(h->store->Put(key, "v" + std::to_string(i)).ok());
      } else {
        ASSERT_TRUE(h->store->Delete(key).ok());
      }
    }
    std::vector<std::string> keys;
    for (int i = 0; i < 80; i++) {
      keys.push_back("k" + std::to_string(rng.Uniform(200)));  // some miss
    }
    keys.push_back(keys.front());  // duplicate key in one batch
    std::vector<std::string_view> views(keys.begin(), keys.end());
    std::vector<std::string> values;
    const std::vector<Status> statuses = h->store->MultiGet(views, &values);
    ASSERT_EQ(statuses.size(), keys.size()) << engine;
    ASSERT_EQ(values.size(), keys.size()) << engine;
    const uint64_t gets_before = h->store->GetStats().user_gets;
    for (size_t i = 0; i < keys.size(); i++) {
      std::string expect;
      const Status s = h->store->Get(keys[i], &expect);
      ASSERT_EQ(statuses[i].ok(), s.ok()) << engine << ": " << keys[i];
      ASSERT_EQ(statuses[i].IsNotFound(), s.IsNotFound()) << engine;
      if (s.ok()) {
        EXPECT_EQ(values[i], expect) << engine << ": " << keys[i];
      }
    }
    // MultiGet counted one user_get per key, like the per-key loop did.
    EXPECT_EQ(gets_before, h->store->GetStats().user_gets - keys.size())
        << engine;
    ASSERT_TRUE(h->store->Close().ok());
  }
}

// SettleBackgroundWork battery: for every registered engine config,
// settling must (a) leave the visible contents identical to an unsettled
// store's iterator view of the same logical history, and (b) be
// idempotent — a second settle moves no bytes and changes nothing.
TEST(SettleBackgroundWorkTest, SettlingIsIdempotentAndContentPreserving) {
  for (const EngineConfig& config : AllEngineConfigs()) {
    const std::string& engine = config.label;
    auto settled = MakeEngine(config);
    auto unsettled = MakeEngine(config);
    Rng rng(0x5e771e);
    kv::WriteBatch batch;
    for (int round = 0; round < 150; round++) {
      batch.Clear();
      const size_t n = 1 + rng.Uniform(16);
      for (size_t j = 0; j < n; j++) {
        const std::string key = "k" + std::to_string(rng.Uniform(250));
        if (rng.Bernoulli(0.85)) {
          batch.Put(key, "v" + std::to_string(round * 100 + j));
        } else {
          batch.Delete(key);
        }
      }
      ASSERT_TRUE(settled->store->Write(batch).ok()) << engine;
      ASSERT_TRUE(unsettled->store->Write(batch).ok()) << engine;
    }
    ASSERT_TRUE(settled->store->SettleBackgroundWork().ok()) << engine;

    // (a) Same iterator view as the unsettled twin.
    auto is = settled->store->NewIterator();
    auto iu = unsettled->store->NewIterator();
    is->SeekToFirst();
    iu->SeekToFirst();
    while (iu->Valid()) {
      ASSERT_TRUE(is->Valid()) << engine << " lost keys on settle";
      EXPECT_EQ(is->key(), iu->key()) << engine;
      EXPECT_EQ(is->value(), iu->value()) << engine;
      is->Next();
      iu->Next();
    }
    EXPECT_FALSE(is->Valid()) << engine << " grew keys on settle";
    ASSERT_TRUE(is->status().ok()) << engine;
    ASSERT_TRUE(iu->status().ok()) << engine;

    // (b) Idempotence: a second settle moves no bytes anywhere.
    const auto stats1 = settled->store->GetStats();
    const uint64_t disk1 = settled->store->DiskBytesUsed();
    ASSERT_TRUE(settled->store->SettleBackgroundWork().ok()) << engine;
    const auto stats2 = settled->store->GetStats();
    EXPECT_EQ(stats2.compaction_bytes_written, stats1.compaction_bytes_written)
        << engine;
    EXPECT_EQ(stats2.gc_bytes_written, stats1.gc_bytes_written) << engine;
    EXPECT_EQ(stats2.checkpoint_bytes_written,
              stats1.checkpoint_bytes_written)
        << engine;
    EXPECT_EQ(stats2.flush_bytes_written, stats1.flush_bytes_written)
        << engine;
    EXPECT_EQ(settled->store->DiskBytesUsed(), disk1) << engine;

    // The twice-settled store still matches the untouched one.
    auto is2 = settled->store->NewIterator();
    auto iu2 = unsettled->store->NewIterator();
    is2->SeekToFirst();
    iu2->SeekToFirst();
    while (iu2->Valid()) {
      ASSERT_TRUE(is2->Valid()) << engine;
      EXPECT_EQ(is2->key(), iu2->key()) << engine;
      EXPECT_EQ(is2->value(), iu2->value()) << engine;
      is2->Next();
      iu2->Next();
    }
    EXPECT_FALSE(is2->Valid()) << engine;
    ASSERT_TRUE(settled->store->Close().ok()) << engine;
    ASSERT_TRUE(unsettled->store->Close().ok()) << engine;
  }
}

// An empty WriteBatch is a no-op in every engine: no log record reaches
// the filesystem and no stats move (a zero-entry WAL/journal record would
// also poison the wal_bytes/user_bytes accounting benches divide by).
TEST(WriteSemanticsTest, EmptyBatchIsANoOpInEveryEngine) {
  for (const EngineConfig& config : AllEngineConfigs()) {
    const std::string& engine = config.label;
    // Journal on for btree so an empty journal record would be visible.
    auto h = MakeEngine(config, DurableParams(config));
    ASSERT_TRUE(h->store->Put("seed-key", "seed-value").ok());
    const auto before = h->store->GetStats();
    const uint64_t disk_before = h->store->DiskBytesUsed();
    kv::WriteBatch empty;
    ASSERT_TRUE(h->store->Write(empty).ok()) << engine;
    const auto after = h->store->GetStats();
    EXPECT_EQ(after.user_batches, before.user_batches) << engine;
    EXPECT_EQ(after.user_puts, before.user_puts) << engine;
    EXPECT_EQ(after.user_deletes, before.user_deletes) << engine;
    EXPECT_EQ(after.user_bytes_written, before.user_bytes_written) << engine;
    EXPECT_EQ(after.wal_bytes_written, before.wal_bytes_written) << engine;
    EXPECT_EQ(h->store->DiskBytesUsed(), disk_before) << engine;
    ASSERT_TRUE(h->store->Close().ok());
  }
}

// Duplicate keys inside one WriteBatch are last-entry-wins in every
// engine, exactly as if the operations had been submitted individually.
TEST(WriteSemanticsTest, DuplicateKeysInOneBatchAreLastEntryWins) {
  for (const EngineConfig& config : AllEngineConfigs()) {
    const std::string& engine = config.label;
    auto h = MakeEngine(config);
    kv::WriteBatch batch;
    batch.Put("a", "first");
    batch.Put("a", "second");
    batch.Put("b", "kept");
    batch.Delete("b");
    batch.Delete("c");
    batch.Put("c", "resurrected");
    ASSERT_TRUE(h->store->Write(batch).ok()) << engine;
    std::string v;
    ASSERT_TRUE(h->store->Get("a", &v).ok()) << engine;
    EXPECT_EQ(v, "second") << engine;
    EXPECT_TRUE(h->store->Get("b", &v).IsNotFound()) << engine;
    ASSERT_TRUE(h->store->Get("c", &v).ok()) << engine;
    EXPECT_EQ(v, "resurrected") << engine;
    // The iterator agrees with point reads (no shadowed duplicate leaks).
    auto it = h->store->NewIterator();
    it->SeekToFirst();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key(), "a");
    EXPECT_EQ(it->value(), "second") << engine;
    it->Next();
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key(), "c") << engine;
    it->Next();
    EXPECT_FALSE(it->Valid()) << engine;
    ASSERT_TRUE(h->store->Close().ok());
  }
}

// ... and last-entry-wins survives crash replay of the batch's log record:
// the batch is re-applied from the WAL/journal/segment in entry order.
TEST(WriteSemanticsTest, DuplicateKeysInBatchSurviveCrashReplay) {
  for (const EngineConfig& config : AllEngineConfigs()) {
    const std::string& engine = config.label;
    auto h = MakeEngine(config, DurableParams(config));
    kv::WriteBatch batch;
    batch.Put("a", "first");
    batch.Put("a", "second");
    batch.Put("b", "kept");
    batch.Delete("b");
    ASSERT_TRUE(h->store->Write(batch).ok()) << engine;
    // Crash without Close: recovery must replay the record, in order.
    h->fs.SimulateCrash();
    h->store.release();  // NOLINT: intentional leak of a "crashed" instance
    Reopen(h.get(), config, DurableParams(config));
    std::string v;
    ASSERT_TRUE(h->store->Get("a", &v).ok())
        << engine << " lost the batch on crash";
    EXPECT_EQ(v, "second") << engine << " replayed the wrong duplicate";
    EXPECT_TRUE(h->store->Get("b", &v).IsNotFound())
        << engine << " resurrected a deleted key on replay";
    ASSERT_TRUE(h->store->Close().ok());
  }
}

// Group commit: the same logical write stream costs fewer log bytes at
// larger batch sizes (record framing amortizes), and strictly fewer than
// one-at-a-time submission. Holds for every engine with a log: LSM WAL,
// B+Tree journal, alog segment records.
TEST(GroupCommitTest, WalBytesGrowSubLinearlyWithBatchSize) {
  for (const EngineConfig& config : AllEngineConfigs()) {
    const std::string& engine = config.label;
    uint64_t prev_wal_bytes = 0;
    bool first = true;
    for (const size_t batch_size : {1u, 8u, 64u}) {
      auto h = MakeEngine(config, JournalParams(config));
      kv::WriteBatch batch;
      for (uint64_t i = 0; i < 1024; i++) {
        batch.Put(kv::MakeKey(i), kv::MakeValue(i, 64));
        if (batch.Count() >= batch_size) {
          ASSERT_TRUE(h->store->Write(batch).ok());
          batch.Clear();
        }
      }
      if (!batch.empty()) {
        ASSERT_TRUE(h->store->Write(batch).ok());
      }
      const auto stats = h->store->GetStats();
      EXPECT_EQ(stats.user_puts, 1024u);
      EXPECT_GT(stats.wal_bytes_written, stats.user_bytes_written)
          << engine << " must log payload plus framing";
      // Single-caller record accounting: with one writer every Write is
      // its own commit group and its own log record (wrappers excluded —
      // sharded splits a batch into per-shard records, cached logs into
      // its own durability log before the inner engine sees anything).
      EXPECT_EQ(stats.write_group_batches, stats.user_batches) << engine;
      if (config.engine != "sharded" && config.engine != "cached") {
        EXPECT_EQ(stats.wal_records, stats.user_batches) << engine;
        EXPECT_EQ(stats.write_groups, stats.user_batches) << engine;
      }
      if (!first) {
        EXPECT_LT(stats.wal_bytes_written, prev_wal_bytes)
            << engine << " batch=" << batch_size
            << ": group commit must amortize log framing";
      }
      prev_wal_bytes = stats.wal_bytes_written;
      first = false;
      ASSERT_TRUE(h->store->Close().ok());
    }
  }
}

// ---- Sync Write vs WriteAsync + Wait equivalence ----------------------
//
// On a timed stack (SsdDevice + virtual clock), WriteAsync immediately
// awaited must be indistinguishable from sync Write for every registered
// engine config: same stats (byte counters AND the virtual-time
// breakdown), same final clock, same on-disk state. A lane seeded at the
// global now and joined right away replays the synchronous timeline
// exactly — this is what keeps the async path a pure overlap mechanism
// rather than a second semantics.

struct TimedHarness {
  sim::SimClock clock;
  std::unique_ptr<ssd::SsdDevice> ssd;
  std::unique_ptr<fs::SimpleFs> fs;
  std::unique_ptr<kv::KVStore> store;
};

std::unique_ptr<TimedHarness> MakeTimedEngine(const EngineConfig& config) {
  auto h = std::make_unique<TimedHarness>();
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 64ull << 20;
  cfg.channels = 4;
  h->ssd = std::make_unique<ssd::SsdDevice>(cfg, &h->clock);
  h->fs = std::make_unique<fs::SimpleFs>(h->ssd.get(), fs::FsOptions{});
  kv::EngineOptions options;
  options.engine = config.engine;
  options.fs = h->fs.get();
  options.clock = &h->clock;
  options.params = config.params;
  // Worker threads would interleave clock charges nondeterministically;
  // the nanosecond-equality check needs a single-threaded timeline.
  if (config.engine == "sharded") options.params["parallel_write"] = "0";
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << config.label << ": "
                           << opened.status().ToString();
  h->store = *std::move(opened);
  return h;
}

void ExpectStatsEqual(const std::string& label, const kv::KvStoreStats& a,
                      const kv::KvStoreStats& b) {
#define PTSB_EXPECT_STAT_EQ(field) EXPECT_EQ(a.field, b.field) << label
  PTSB_EXPECT_STAT_EQ(user_puts);
  PTSB_EXPECT_STAT_EQ(user_gets);
  PTSB_EXPECT_STAT_EQ(user_deletes);
  PTSB_EXPECT_STAT_EQ(user_scans);
  PTSB_EXPECT_STAT_EQ(user_batches);
  PTSB_EXPECT_STAT_EQ(user_bytes_written);
  PTSB_EXPECT_STAT_EQ(user_bytes_read);
  PTSB_EXPECT_STAT_EQ(wal_records);
  PTSB_EXPECT_STAT_EQ(write_groups);
  PTSB_EXPECT_STAT_EQ(write_group_batches);
  PTSB_EXPECT_STAT_EQ(wal_bytes_written);
  PTSB_EXPECT_STAT_EQ(flush_bytes_written);
  PTSB_EXPECT_STAT_EQ(compaction_bytes_written);
  PTSB_EXPECT_STAT_EQ(compaction_bytes_read);
  PTSB_EXPECT_STAT_EQ(page_write_bytes);
  PTSB_EXPECT_STAT_EQ(page_read_bytes);
  PTSB_EXPECT_STAT_EQ(checkpoint_bytes_written);
  PTSB_EXPECT_STAT_EQ(gc_bytes_written);
  PTSB_EXPECT_STAT_EQ(gc_bytes_read);
  PTSB_EXPECT_STAT_EQ(cache_hits);
  PTSB_EXPECT_STAT_EQ(cache_misses);
  PTSB_EXPECT_STAT_EQ(buffer_coalesced_bytes);
  PTSB_EXPECT_STAT_EQ(flush_batches);
  PTSB_EXPECT_STAT_EQ(stall_count);
  PTSB_EXPECT_STAT_EQ(time_wal_ns);
  PTSB_EXPECT_STAT_EQ(time_flush_ns);
  PTSB_EXPECT_STAT_EQ(time_compaction_ns);
  PTSB_EXPECT_STAT_EQ(time_read_path_ns);
  PTSB_EXPECT_STAT_EQ(time_writeback_ns);
  PTSB_EXPECT_STAT_EQ(time_checkpoint_ns);
  PTSB_EXPECT_STAT_EQ(time_background_ns);
#undef PTSB_EXPECT_STAT_EQ
}

// The timed fan-out path returns byte-identical results to sequential
// Gets for every engine config (read_queue_depth forced > 1, clock
// attached, multi-channel device).
TEST(MultiGetTest, FanOutMatchesGetsWhenTimed) {
  for (EngineConfig config : AllEngineConfigs()) {
    const std::string engine = config.label;
    // Force the fan-out path regardless of the config's own params.
    config.params["read_queue_depth"] = "4";
    auto h = MakeTimedEngine(config);
    Rng rng(0xfa11ed);
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(h->store
                      ->Put("k" + std::to_string(rng.Uniform(120)),
                            std::string(300, static_cast<char>('a' + i % 26)))
                      .ok());
    }
    ASSERT_TRUE(h->store->Flush().ok());
    std::vector<std::string> keys;
    for (int i = 0; i < 60; i++) {
      keys.push_back("k" + std::to_string(rng.Uniform(140)));  // some miss
    }
    std::vector<std::string_view> views(keys.begin(), keys.end());
    std::vector<std::string> values;
    const std::vector<Status> statuses = h->store->MultiGet(views, &values);
    for (size_t i = 0; i < keys.size(); i++) {
      std::string expect;
      const Status s = h->store->Get(keys[i], &expect);
      ASSERT_EQ(statuses[i].ok(), s.ok()) << engine << ": " << keys[i];
      if (s.ok()) {
        EXPECT_EQ(values[i], expect) << engine;
      }
    }
    ASSERT_TRUE(h->store->Close().ok()) << engine;
  }
}

TEST(AsyncWriteEquivalenceTest, WriteAsyncPlusWaitMatchesSyncWrite) {
  for (const EngineConfig& config : AllEngineConfigs()) {
    const std::string& label = config.label;
    auto sync_h = MakeTimedEngine(config);
    auto async_h = MakeTimedEngine(config);

    // A deterministic batched trace, generated once and applied to both.
    std::vector<kv::WriteBatch> trace;
    Rng rng(0xa51dc0de);
    for (int round = 0; round < 40; round++) {
      kv::WriteBatch batch;
      const size_t n = 1 + rng.Uniform(24);
      for (size_t j = 0; j < n; j++) {
        const std::string key = "k" + std::to_string(rng.Uniform(200));
        if (rng.Bernoulli(0.85)) {
          std::string value(rng.UniformRange(1, 300), '\0');
          rng.FillBytes(value.data(), value.size());
          batch.Put(key, value);
        } else {
          batch.Delete(key);
        }
      }
      trace.push_back(std::move(batch));
    }

    for (const kv::WriteBatch& batch : trace) {
      ASSERT_TRUE(sync_h->store->Write(batch).ok()) << label;
      kv::WriteHandle handle = async_h->store->WriteAsync(batch);
      ASSERT_TRUE(handle.Wait().ok()) << label;
    }

    EXPECT_EQ(sync_h->clock.NowNanos(), async_h->clock.NowNanos())
        << label << ": submit-then-wait must replay the sync timeline";
    ExpectStatsEqual(label, sync_h->store->GetStats(),
                     async_h->store->GetStats());
    EXPECT_EQ(sync_h->store->DiskBytesUsed(), async_h->store->DiskBytesUsed())
        << label;

    // Identical visible state.
    auto is = sync_h->store->NewIterator();
    auto ia = async_h->store->NewIterator();
    is->SeekToFirst();
    ia->SeekToFirst();
    while (is->Valid()) {
      ASSERT_TRUE(ia->Valid()) << label;
      EXPECT_EQ(is->key(), ia->key()) << label;
      EXPECT_EQ(is->value(), ia->value()) << label;
      is->Next();
      ia->Next();
    }
    EXPECT_FALSE(ia->Valid()) << label;
    ASSERT_TRUE(sync_h->store->Close().ok()) << label;
    ASSERT_TRUE(async_h->store->Close().ok()) << label;
  }
}

// ---- QoS scheduling differential battery ------------------------------
//
// The inter-class scheduler (ssd::SsdConfig::background_slice_ns /
// class_weights / background_rate_mbps) may reorder and delay commands
// in VIRTUAL TIME only. For every registered engine config running with
// background_io on, the same batched trace against a QoS-off device and
// an aggressively-throttled QoS device must end in byte-identical
// visible contents and identical user-facing counters; only the
// virtual-clock numbers may move. The battery also checks the QoS runs
// actually engaged the scheduler (background-class traffic, preemptions
// and admission throttling all fired somewhere), so a regression that
// silently stops classifying background I/O cannot pass by vacuity.

std::unique_ptr<TimedHarness> MakeQosTimedEngine(
    const EngineConfig& config, const ssd::SsdConfig& ssd_cfg) {
  auto h = std::make_unique<TimedHarness>();
  h->ssd = std::make_unique<ssd::SsdDevice>(ssd_cfg, &h->clock);
  h->fs = std::make_unique<fs::SimpleFs>(h->ssd.get(), fs::FsOptions{});
  kv::EngineOptions options;
  options.engine = config.engine;
  options.fs = h->fs.get();
  options.clock = &h->clock;
  options.params = config.params;
  options.params["background_io"] = "1";
  if (config.engine == "sharded") options.params["parallel_write"] = "0";
  auto opened = kv::OpenStore(options);
  EXPECT_TRUE(opened.ok()) << config.label << ": "
                           << opened.status().ToString();
  h->store = *std::move(opened);
  return h;
}

TEST(QosDifferentialTest, ThrottledSchedulingNeverChangesVisibleState) {
  ssd::SsdConfig off_cfg;
  off_cfg.geometry.logical_bytes = 64ull << 20;
  off_cfg.channels = 4;
  // Aggressive QoS on the twin: tight preemption slices, a weighted
  // interleave AND a low background admission rate, so all three
  // scheduler mechanisms perturb the timeline at once.
  ssd::SsdConfig qos_cfg = off_cfg;
  qos_cfg.background_slice_ns = 50'000;
  qos_cfg.class_weights = {4, 4, 1};
  qos_cfg.background_rate_mbps = 20;

  uint64_t total_preemptions = 0;
  int64_t total_throttled_ns = 0;
  for (const EngineConfig& config : AllEngineConfigs()) {
    const std::string& label = config.label;
    auto off = MakeQosTimedEngine(config, off_cfg);
    auto qos = MakeQosTimedEngine(config, qos_cfg);

    // One deterministic trace, applied to both stores in lockstep with
    // interleaved point-read probes while background work is being
    // preempted and throttled on one side only.
    Rng rng(0x905dc0de);
    kv::WriteBatch batch;
    for (int round = 0; round < 90; round++) {
      batch.Clear();
      const size_t n = 1 + rng.Uniform(24);
      for (size_t j = 0; j < n; j++) {
        const std::string key = "k" + std::to_string(rng.Uniform(300));
        if (rng.Bernoulli(0.85)) {
          std::string value(rng.UniformRange(1, 400), '\0');
          rng.FillBytes(value.data(), value.size());
          batch.Put(key, value);
        } else {
          batch.Delete(key);
        }
      }
      ASSERT_TRUE(off->store->Write(batch).ok()) << label;
      ASSERT_TRUE(qos->store->Write(batch).ok()) << label;
      if (round % 10 == 9) {
        for (int i = 0; i < 8; i++) {
          const std::string key = "k" + std::to_string(rng.Uniform(320));
          std::string a, b;
          const Status sa = off->store->Get(key, &a);
          const Status sb = qos->store->Get(key, &b);
          ASSERT_EQ(sa.ok(), sb.ok()) << label << ": " << key;
          if (sa.ok()) {
            ASSERT_EQ(a, b) << label << ": " << key;
          }
        }
      }
    }

    // Identical user-facing counters: scheduling may move virtual time,
    // never the logical operation accounting.
    const auto so = off->store->GetStats();
    const auto sq = qos->store->GetStats();
    EXPECT_EQ(so.user_puts, sq.user_puts) << label;
    EXPECT_EQ(so.user_gets, sq.user_gets) << label;
    EXPECT_EQ(so.user_deletes, sq.user_deletes) << label;
    EXPECT_EQ(so.user_scans, sq.user_scans) << label;
    EXPECT_EQ(so.user_batches, sq.user_batches) << label;
    EXPECT_EQ(so.user_bytes_written, sq.user_bytes_written) << label;
    EXPECT_EQ(so.user_bytes_read, sq.user_bytes_read) << label;

    // Byte-identical visible contents, entry by entry.
    auto it_off = off->store->NewIterator();
    auto it_qos = qos->store->NewIterator();
    it_off->SeekToFirst();
    it_qos->SeekToFirst();
    while (it_off->Valid()) {
      ASSERT_TRUE(it_qos->Valid()) << label << " lost keys under QoS";
      EXPECT_EQ(it_off->key(), it_qos->key()) << label;
      EXPECT_EQ(it_off->value(), it_qos->value()) << label;
      it_off->Next();
      it_qos->Next();
    }
    EXPECT_FALSE(it_qos->Valid()) << label << " grew keys under QoS";
    ASSERT_TRUE(it_off->status().ok()) << label;
    ASSERT_TRUE(it_qos->status().ok()) << label;

    // The QoS device saw background-class traffic: every engine runs its
    // maintenance on the background lane under background_io, so a trace
    // this size that never touches the lane means classification broke.
    // Exception: async-dispatch configs (queue_depth) run maintenance
    // inside the enclosing write lane — RunBackgroundWork cannot fork a
    // nested lane and legitimately falls back to the caller's class.
    uint64_t bg_bytes = 0;
    for (const auto& c : qos->ssd->channel_stats()) {
      bg_bytes +=
          c.class_bytes[static_cast<size_t>(sim::IoClass::kBackground)];
      total_preemptions += c.preemptions;
      total_throttled_ns += c.bg_throttled_ns;
    }
    if (config.params.count("queue_depth") == 0) {
      EXPECT_GT(bg_bytes, 0u)
          << label << ": trace never reached the background lane";
    }
    ASSERT_TRUE(off->store->Close().ok()) << label;
    ASSERT_TRUE(qos->store->Close().ok()) << label;
  }
  // Across the battery both perturbation mechanisms must have fired —
  // otherwise the byte-identical check above proved nothing.
  EXPECT_GT(total_preemptions, 0u);
  EXPECT_GT(total_throttled_ns, 0);
}

// ---- Concurrent multi-writer differential test ------------------------
//
// N writer threads commit OVERLAPPING key ranges concurrently through
// each engine's cross-thread write group (leaders merge waiting
// followers' batches into one log record). Every value is a pure
// function of its key, so any interleaving must converge to the same
// final state — the one a serial golden run produces. The tiny params
// make flush/compaction/eviction/checkpoint/segment GC all fire under
// the concurrent load, and the battery covers every registered engine
// config including the wrappers. This test is in the ctest "stress"
// label: the TSan CI matrix entry runs it to hunt data races across the
// write group, the filesystem lock split and the device-internal locks.
TEST(ConcurrentWriteTest, MultiWriterMatchesSerialGoldenRun) {
  constexpr size_t kThreads = 4;
  constexpr uint64_t kKeys = 160;
  constexpr int kRounds = 3;
  constexpr uint64_t kSlice = kKeys / 2;  // each key hits 2 threads
  const auto value_for = [](uint64_t key) {
    return kv::MakeValue(key * 1315423911ull + 7, 120);
  };
  // Thread t's ops: kRounds passes over a half-keyspace slice starting
  // at t * kKeys / kThreads (wrapping), so every key is written by two
  // threads and rewritten every round.
  const auto thread_keys = [&](size_t t) {
    std::vector<uint64_t> keys;
    for (uint64_t i = 0; i < kSlice; i++) {
      keys.push_back((t * (kKeys / kThreads) + i) % kKeys);
    }
    return keys;
  };
  for (const EngineConfig& config : AllEngineConfigs()) {
    const std::string& label = config.label;

    // Serial golden run: the same per-thread op streams, one thread.
    auto golden = MakeEngine(config);
    for (int round = 0; round < kRounds; round++) {
      for (size_t t = 0; t < kThreads; t++) {
        for (const uint64_t key : thread_keys(t)) {
          ASSERT_TRUE(
              golden->store->Put(kv::MakeKey(key), value_for(key)).ok())
              << label;
        }
      }
    }

    auto concurrent = MakeEngine(config);
    ASSERT_TRUE(concurrent->store->SupportsConcurrentWriters()) << label;
    std::atomic<bool> failed{false};
    std::vector<std::thread> writers;
    for (size_t t = 0; t < kThreads; t++) {
      writers.emplace_back([&, t] {
        for (int round = 0; round < kRounds; round++) {
          for (const uint64_t key : thread_keys(t)) {
            if (!concurrent->store->Put(kv::MakeKey(key), value_for(key))
                     .ok()) {
              failed.store(true);
              return;
            }
          }
        }
      });
    }
    for (std::thread& w : writers) w.join();
    ASSERT_FALSE(failed.load()) << label;

    // Same totals through the group: every user batch landed in exactly
    // one group, and merging can only reduce the record count.
    const auto gs = golden->store->GetStats();
    const auto cs = concurrent->store->GetStats();
    EXPECT_EQ(cs.user_puts, gs.user_puts) << label;
    EXPECT_EQ(cs.write_group_batches, cs.user_batches) << label;
    EXPECT_LE(cs.write_groups, cs.user_batches) << label;
    EXPECT_LE(cs.wal_records, gs.wal_records) << label;

    // Identical final visible state, entry by entry.
    auto ig = golden->store->NewIterator();
    auto ic = concurrent->store->NewIterator();
    ig->SeekToFirst();
    ic->SeekToFirst();
    size_t seen = 0;
    while (ig->Valid()) {
      ASSERT_TRUE(ic->Valid()) << label;
      EXPECT_EQ(ig->key(), ic->key()) << label;
      EXPECT_EQ(ig->value(), ic->value()) << label;
      ig->Next();
      ic->Next();
      seen++;
    }
    EXPECT_FALSE(ic->Valid()) << label;
    EXPECT_EQ(seen, kKeys) << label;
    ASSERT_TRUE(golden->store->Close().ok()) << label;
    ASSERT_TRUE(concurrent->store->Close().ok()) << label;
  }
}

TEST(DifferentialTest, EnginesAgreeAfterReopen) {
  const std::vector<EngineConfig> configs = AllEngineConfigs();
  std::vector<std::unique_ptr<EngineHarness>> engines;
  for (const EngineConfig& c : configs) engines.push_back(MakeEngine(c));
  testing::ReferenceModel model;
  Rng rng(42);
  for (int i = 0; i < 1500; i++) {
    const std::string key = "k" + std::to_string(rng.Uniform(300));
    std::string value(200, '\0');
    rng.FillBytes(value.data(), value.size());
    for (auto& h : engines) {
      ASSERT_TRUE(h->store->Put(key, value).ok());
    }
    model.Put(key, value);
  }
  for (size_t e = 0; e < engines.size(); e++) {
    ASSERT_TRUE(engines[e]->store->Close().ok()) << configs[e].label;
    Reopen(engines[e].get(), configs[e]);
    testing::VerifyAll(engines[e]->store.get(), model);
    ASSERT_TRUE(engines[e]->store->Close().ok()) << configs[e].label;
  }
}

// Full-stack accounting invariant: user bytes <= host bytes <= NAND bytes
// (write amplification can never be < 1 at either layer).
TEST(StackInvariantTest, WriteAmplificationLayersNest) {
  sim::SimClock clock;
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 64 << 20;
  cfg.geometry.hardware_op_frac = 0.15;
  ssd::SsdDevice dev(cfg, &clock);
  block::IoStatCollector io(&dev);
  fs::SimpleFs fs(&io, {});
  kv::EngineOptions options;
  options.engine = "lsm";
  options.fs = &fs;
  options.clock = &clock;
  options.params = TinyLsmParams();
  auto store = *kv::OpenStore(options);
  Rng rng(7);
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(store
                    ->Put("key" + std::to_string(rng.Uniform(500)),
                          std::string(600, 'v'))
                    .ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  const auto engine = store->GetStats();
  const auto host = io.counters();
  const auto smart = dev.smart();
  EXPECT_LE(engine.user_bytes_written, host.write_bytes);
  EXPECT_LE(host.write_bytes, smart.nand_bytes_written);
  EXPECT_EQ(host.write_bytes, smart.host_bytes_written);
  ASSERT_TRUE(store->Close().ok());
}

TEST(FaultInjectionTest, LsmSurfacesDeviceWriteErrors) {
  EngineHarness h;
  kv::EngineOptions options;
  options.engine = "lsm";
  options.fs = &h.fs;
  options.params = TinyLsmParams();
  options.params["wal_buffer_bytes"] = "1";  // write-through: faults hit now
  auto store = *kv::OpenStore(options);
  std::string value(8000, 'v');  // spans pages: reaches the device now
  ASSERT_TRUE(store->Put("a", value).ok());
  h.dev.FailNextWrites(1);
  Status s = store->Put("b", value);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

TEST(FaultInjectionTest, BTreeSurfacesCheckpointErrors) {
  auto h = MakeEngine({"btree", "btree", TinyBTreeParams()});
  ASSERT_TRUE(h->store->Put("a", std::string(500, 'v')).ok());
  h->dev.FailNextWrites(1);
  Status s = h->store->Flush();  // checkpoint must write pages
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

TEST(FaultInjectionTest, AlogSurfacesDeviceWriteErrors) {
  auto h = MakeEngine({"alog", "alog", TinyAlogParams()});
  std::string value(8000, 'v');  // spans pages: reaches the device now
  ASSERT_TRUE(h->store->Put("a", value).ok());
  h->dev.FailNextWrites(1);
  Status s = h->store->Put("b", value);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

// Partitioned subcompactions are a scheduling choice, not a semantics
// change: the same batched trace on a timed multi-channel stack with
// background_io on must leave lsm K=1 and K=4 with byte-identical
// visible contents and identical user-facing counters. Only the
// virtual-time numbers (and SST file seams) may differ.
TEST(SubcompactionDifferentialTest, ParallelismNeverChangesVisibleState) {
  EngineConfig k1{"lsm-k1", "lsm", TinyLsmParams()};
  EngineConfig k4{"lsm-k4", "lsm", TinyLsmParams()};
  k4.params["compaction_parallelism"] = "4";

  auto h1 = MakeQosTimedEngine(k1, [] {
    ssd::SsdConfig cfg;
    cfg.geometry.logical_bytes = 64ull << 20;
    cfg.channels = 4;
    return cfg;
  }());
  auto h4 = MakeQosTimedEngine(k4, [] {
    ssd::SsdConfig cfg;
    cfg.geometry.logical_bytes = 64ull << 20;
    cfg.channels = 4;
    return cfg;
  }());

  Rng rng(0x5bc0de);
  kv::WriteBatch batch;
  for (int round = 0; round < 120; round++) {
    batch.Clear();
    const size_t n = 1 + rng.Uniform(24);
    for (size_t j = 0; j < n; j++) {
      const std::string key = "k" + std::to_string(rng.Uniform(400));
      if (rng.Bernoulli(0.85)) {
        std::string value(rng.UniformRange(1, 400), '\0');
        rng.FillBytes(value.data(), value.size());
        batch.Put(key, value);
      } else {
        batch.Delete(key);
      }
    }
    ASSERT_TRUE(h1->store->Write(batch).ok());
    ASSERT_TRUE(h4->store->Write(batch).ok());
    if (round % 10 == 9) {
      const std::string probe = "k" + std::to_string(rng.Uniform(400));
      std::string a, b;
      const Status sa = h1->store->Get(probe, &a);
      const Status sb = h4->store->Get(probe, &b);
      ASSERT_EQ(sa.ok(), sb.ok()) << probe << " at round " << round;
      if (sa.ok()) {
        ASSERT_EQ(a, b) << probe;
      }
    }
  }
  ASSERT_TRUE(h1->store->SettleBackgroundWork().ok());
  ASSERT_TRUE(h4->store->SettleBackgroundWork().ok());

  // K=4 must actually have split work: with this trace and these tiny
  // sizes, compactions ran (the K=1 side proves it), so a vacuously
  // sequential K=4 is a wiring bug.
  EXPECT_GT(h1->store->GetStats().compaction_bytes_written, 0u);

  // Identical user-facing counters.
  const auto s1 = h1->store->GetStats();
  const auto s4 = h4->store->GetStats();
  EXPECT_EQ(s1.user_puts, s4.user_puts);
  EXPECT_EQ(s1.user_gets, s4.user_gets);
  EXPECT_EQ(s1.user_deletes, s4.user_deletes);
  EXPECT_EQ(s1.user_batches, s4.user_batches);
  EXPECT_EQ(s1.user_bytes_written, s4.user_bytes_written);
  EXPECT_EQ(s1.user_bytes_read, s4.user_bytes_read);
  EXPECT_EQ(s1.wal_records, s4.wal_records);
  EXPECT_EQ(s1.wal_bytes_written, s4.wal_bytes_written);
  EXPECT_EQ(s1.flush_bytes_written, s4.flush_bytes_written);
  // Both sides compacted; byte totals differ (installing a partitioned
  // compaction at a different op index shifts every later pick, and the
  // micro_compact bench pins down exact conservation for a fixed pick).
  EXPECT_GT(s4.compaction_bytes_read, 0u);

  // Byte-identical visible contents.
  auto i1 = h1->store->NewIterator();
  auto i4 = h4->store->NewIterator();
  i1->SeekToFirst();
  i4->SeekToFirst();
  size_t keys = 0;
  while (i1->Valid()) {
    ASSERT_TRUE(i4->Valid()) << "K=4 lost keys after " << keys;
    EXPECT_EQ(i1->key(), i4->key());
    EXPECT_EQ(i1->value(), i4->value()) << i1->key();
    i1->Next();
    i4->Next();
    keys++;
  }
  EXPECT_FALSE(i4->Valid()) << "K=4 has phantom keys";
  ASSERT_TRUE(i1->status().ok());
  ASSERT_TRUE(i4->status().ok());
  ASSERT_TRUE(h1->store->Close().ok());
  ASSERT_TRUE(h4->store->Close().ok());
}

TEST(FaultInjectionTest, EnginesFailCleanlyWhenDeviceFull) {
  // A device far too small for the workload: every engine must surface
  // NoSpace without aborting. 4 MiB with small append chunks, so even
  // the sharded configs (3 shards x several files each) can open and
  // then run out mid-workload rather than at Open.
  for (const EngineConfig& config : AllEngineConfigs()) {
    block::MemoryBlockDevice dev(4096, 1024);  // 4 MiB
    fs::FsOptions fs_options;
    fs_options.append_alloc_pages = 8;
    fs::SimpleFs fs(&dev, fs_options);
    kv::EngineOptions options;
    options.engine = config.engine;
    options.fs = &fs;
    options.params = config.params;
    auto opened = kv::OpenStore(options);
    ASSERT_TRUE(opened.ok()) << config.label << ": "
                             << opened.status().ToString();
    auto store = *std::move(opened);
    Status s = Status::OK();
    std::string value(900, 'v');
    for (int i = 0; i < 8000 && s.ok(); i++) {
      s = store->Put("k" + std::to_string(i), value);
    }
    EXPECT_TRUE(s.IsNoSpace())
        << "engine=" << config.label << " got: " << s.ToString();
  }
}

}  // namespace
}  // namespace ptsb
