// Differential testing: both engines implement kv::KVStore, so identical
// operation streams must produce identical visible state — through
// flushes, compactions, evictions, checkpoints and reopen. Also checks
// cross-stack accounting invariants (user <= host <= NAND bytes) and
// error propagation from injected device faults.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "block/iostat.h"
#include "block/memory_device.h"
#include "btree/btree_store.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "lsm/lsm_store.h"
#include "sim/clock.h"
#include "ssd/ssd_device.h"
#include "test_support.h"
#include "util/random.h"

namespace ptsb {
namespace {

lsm::LsmOptions TinyLsm() {
  lsm::LsmOptions o;
  o.memtable_bytes = 16 << 10;
  o.l1_target_bytes = 64 << 10;
  o.sst_target_bytes = 32 << 10;
  o.block_bytes = 1024;
  return o;
}

btree::BTreeOptions TinyBTree() {
  btree::BTreeOptions o;
  o.leaf_max_bytes = 2 << 10;
  o.internal_max_bytes = 512;
  o.cache_bytes = 16 << 10;
  o.checkpoint_every_bytes = 64 << 10;
  o.file_grow_bytes = 64 << 10;
  return o;
}

struct EngineHarness {
  block::MemoryBlockDevice dev{4096, 1 << 15};
  fs::SimpleFs fs{&dev, {}};
  std::unique_ptr<kv::KVStore> store;
};

std::unique_ptr<EngineHarness> MakeLsm() {
  auto h = std::make_unique<EngineHarness>();
  h->store = *lsm::LsmStore::Open(&h->fs, TinyLsm());
  return h;
}

std::unique_ptr<EngineHarness> MakeBTree() {
  auto h = std::make_unique<EngineHarness>();
  h->store = *btree::BTreeStore::Open(&h->fs, TinyBTree());
  return h;
}

// One deterministic op stream applied to both engines.
class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, EnginesAgreeOnEverything) {
  auto lsm = MakeLsm();
  auto bt = MakeBTree();
  Rng rng(GetParam());
  for (int i = 0; i < 3000; i++) {
    const std::string key = "k" + std::to_string(rng.Uniform(600));
    const int pick = static_cast<int>(rng.Uniform(10));
    if (pick < 7) {
      std::string value(rng.UniformRange(1, 800), '\0');
      rng.FillBytes(value.data(), value.size());
      ASSERT_TRUE(lsm->store->Put(key, value).ok());
      ASSERT_TRUE(bt->store->Put(key, value).ok());
    } else if (pick < 9) {
      ASSERT_TRUE(lsm->store->Delete(key).ok());
      ASSERT_TRUE(bt->store->Delete(key).ok());
    } else {
      std::string a, b;
      const Status sa = lsm->store->Get(key, &a);
      const Status sb = bt->store->Get(key, &b);
      ASSERT_EQ(sa.ok(), sb.ok()) << key << " at op " << i;
      if (sa.ok()) ASSERT_EQ(a, b);
    }
  }
  // Full-range scans must agree exactly.
  std::vector<std::pair<std::string, std::string>> sa, sb;
  ASSERT_TRUE(lsm->store->Scan("", 100000, &sa).ok());
  ASSERT_TRUE(bt->store->Scan("", 100000, &sb).ok());
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); i++) {
    EXPECT_EQ(sa[i].first, sb[i].first);
    EXPECT_EQ(sa[i].second, sb[i].second);
  }
  ASSERT_TRUE(lsm->store->Close().ok());
  ASSERT_TRUE(bt->store->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(DifferentialTest, EnginesAgreeAfterReopen) {
  block::MemoryBlockDevice dev_a(4096, 1 << 15), dev_b(4096, 1 << 15);
  fs::SimpleFs fs_a(&dev_a, {}), fs_b(&dev_b, {});
  testing::ReferenceModel model;
  {
    auto lsm = *lsm::LsmStore::Open(&fs_a, TinyLsm());
    auto bt = *btree::BTreeStore::Open(&fs_b, TinyBTree());
    Rng rng(42);
    for (int i = 0; i < 1500; i++) {
      const std::string key = "k" + std::to_string(rng.Uniform(300));
      std::string value(200, '\0');
      rng.FillBytes(value.data(), value.size());
      ASSERT_TRUE(lsm->Put(key, value).ok());
      ASSERT_TRUE(bt->Put(key, value).ok());
      model.Put(key, value);
    }
    ASSERT_TRUE(lsm->Close().ok());
    ASSERT_TRUE(bt->Close().ok());
  }
  auto lsm = *lsm::LsmStore::Open(&fs_a, TinyLsm());
  auto bt = *btree::BTreeStore::Open(&fs_b, TinyBTree());
  testing::VerifyAll(lsm.get(), model);
  testing::VerifyAll(bt.get(), model);
  ASSERT_TRUE(lsm->Close().ok());
  ASSERT_TRUE(bt->Close().ok());
}

// Full-stack accounting invariant: user bytes <= host bytes <= NAND bytes
// (write amplification can never be < 1 at either layer).
TEST(StackInvariantTest, WriteAmplificationLayersNest) {
  sim::SimClock clock;
  ssd::SsdConfig cfg;
  cfg.geometry.logical_bytes = 64 << 20;
  cfg.geometry.hardware_op_frac = 0.15;
  ssd::SsdDevice dev(cfg, &clock);
  block::IoStatCollector io(&dev);
  fs::SimpleFs fs(&io, {});
  auto store = *lsm::LsmStore::Open(&fs, TinyLsm());
  Rng rng(7);
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(store
                    ->Put("key" + std::to_string(rng.Uniform(500)),
                          std::string(600, 'v'))
                    .ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  const auto engine = store->GetStats();
  const auto host = io.counters();
  const auto smart = dev.smart();
  EXPECT_LE(engine.user_bytes_written, host.write_bytes);
  EXPECT_LE(host.write_bytes, smart.nand_bytes_written);
  EXPECT_EQ(host.write_bytes, smart.host_bytes_written);
  ASSERT_TRUE(store->Close().ok());
}

TEST(FaultInjectionTest, LsmSurfacesDeviceWriteErrors) {
  block::MemoryBlockDevice dev(4096, 1 << 14);
  fs::SimpleFs fs(&dev, {});
  auto options = TinyLsm();
  options.wal_buffer_bytes = 1;  // write-through so faults hit immediately
  auto store = *lsm::LsmStore::Open(&fs, options);
  std::string value(8000, 'v');  // spans pages: reaches the device now
  ASSERT_TRUE(store->Put("a", value).ok());
  dev.FailNextWrites(1);
  Status s = store->Put("b", value);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

TEST(FaultInjectionTest, BTreeSurfacesCheckpointErrors) {
  block::MemoryBlockDevice dev(4096, 1 << 14);
  fs::SimpleFs fs(&dev, {});
  auto store = *btree::BTreeStore::Open(&fs, TinyBTree());
  ASSERT_TRUE(store->Put("a", std::string(500, 'v')).ok());
  dev.FailNextWrites(1);
  Status s = store->Flush();  // checkpoint must write pages
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

TEST(FaultInjectionTest, EnginesFailCleanlyWhenDeviceFull) {
  // A device far too small for the workload: both engines must surface
  // NoSpace without aborting.
  for (const bool use_lsm : {true, false}) {
    block::MemoryBlockDevice dev(4096, 256);  // 1 MiB
    fs::SimpleFs fs(&dev, {});
    std::unique_ptr<kv::KVStore> store;
    if (use_lsm) {
      store = *lsm::LsmStore::Open(&fs, TinyLsm());
    } else {
      store = *btree::BTreeStore::Open(&fs, TinyBTree());
    }
    Status s = Status::OK();
    std::string value(900, 'v');
    for (int i = 0; i < 4000 && s.ok(); i++) {
      s = store->Put("k" + std::to_string(i), value);
    }
    EXPECT_TRUE(s.IsNoSpace()) << "engine=" << (use_lsm ? "lsm" : "btree")
                               << " got: " << s.ToString();
  }
}

}  // namespace
}  // namespace ptsb
