#!/usr/bin/env python3
"""Docs lint: docs/ENGINES.md must stay in sync with the engine code.

For every engine section in docs/ENGINES.md, the parameter keys listed in
its param table must be exactly the keys the engine's EncodeEngineParams
emits (parsed from the `p["key"] = ...` lines in the store .cc), and every
key must correspond to a field of the engine's option struct (same-name
identifier in its options.h). Run from the repo root; exits non-zero with
a per-engine report when the docs have rotted.
"""
import re
import sys
from pathlib import Path

# engine section name in ENGINES.md -> (store .cc with EncodeEngineParams,
# options header whose struct fields the keys mirror)
ENGINES = {
    "lsm": ("src/lsm/lsm_store.cc", "src/lsm/options.h"),
    "btree": ("src/btree/btree_store.cc", "src/btree/options.h"),
    "alog": ("src/alog/alog_store.cc", "src/alog/options.h"),
    "sharded": ("src/sharded/sharded_store.cc", "src/sharded/options.h"),
}

DOC = Path("docs/ENGINES.md")


def docs_sections(text: str) -> dict:
    """Maps engine name -> its section body (## `<engine>` ... until next ##)."""
    sections = {}
    matches = list(re.finditer(r"^## `(\w+)`", text, re.MULTILINE))
    for i, m in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        sections[m.group(1)] = text[m.start():end]
    return sections


def table_keys(section: str) -> set:
    """Backticked keys in the first column of markdown table rows."""
    keys = set()
    for line in section.splitlines():
        m = re.match(r"^\|\s*`(\w+)`\s*\|", line)
        if m:
            keys.add(m.group(1))
    return keys


def code_keys(cc_path: Path) -> set:
    """Keys EncodeEngineParams emits: p["key"] = ... assignments."""
    return set(re.findall(r'p\["(\w+)"\]\s*=', cc_path.read_text()))


def header_fields(h_path: Path) -> set:
    """Identifiers declared as option-struct fields (name = default;)."""
    return set(re.findall(r"^\s*[A-Za-z_][\w:<>\s\*]*?\b(\w+)\s*=",
                          h_path.read_text(), re.MULTILINE))


def main() -> int:
    if not DOC.exists():
        print(f"docs lint: {DOC} is missing", file=sys.stderr)
        return 1
    sections = docs_sections(DOC.read_text())
    failures = []
    for engine, (cc, header) in ENGINES.items():
        if engine not in sections:
            failures.append(f"{engine}: no `## `{engine}`` section in {DOC}")
            continue
        documented = table_keys(sections[engine])
        emitted = code_keys(Path(cc))
        fields = header_fields(Path(header))
        if not documented:
            failures.append(f"{engine}: no param table rows found in {DOC}")
            continue
        for key in sorted(documented - emitted):
            failures.append(
                f"{engine}: `{key}` documented in {DOC} but not emitted by "
                f"EncodeEngineParams in {cc}")
        for key in sorted(emitted - documented):
            failures.append(
                f"{engine}: `{key}` emitted by EncodeEngineParams in {cc} "
                f"but missing from the param table in {DOC}")
        for key in sorted(documented & emitted):
            if key not in fields:
                failures.append(
                    f"{engine}: `{key}` has no matching option-struct field "
                    f"in {header}")
    if failures:
        print("docs lint FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    total = sum(len(table_keys(sections[e])) for e in ENGINES if e in sections)
    print(f"docs lint OK: {total} engine params checked against "
          f"{len(ENGINES)} option headers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
