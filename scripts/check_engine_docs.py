#!/usr/bin/env python3
"""Docs lint: the reference docs must stay in sync with the code.

Three checks, run from the repo root (exits non-zero with a report when
any doc has rotted):

1. docs/ENGINES.md: for every engine section, the parameter keys listed
   in its param table must be exactly the keys the engine's
   EncodeEngineParams emits (parsed from the `p["key"] = ...` lines in
   the store .cc), and every key must correspond to a field of the
   engine's option struct (same-name identifier in its options.h).
2. docs/EXPERIMENTS.md: the bench table's first-column binary names must
   be exactly the bench/*.cc source list (a bench without a row, or a
   row without a bench, fails).
3. docs/SIMULATION.md: the parameter tables in its "SSD timing model"
   section must list exactly the numeric/bool fields of the structs in
   src/ssd/config.h (FlashGeometry, SsdTiming, SsdConfig).
4. README.md: the `run_experiment` flag table must list exactly the
   flags examples/run_experiment.cpp parses (underscore spellings are
   treated as aliases and skipped).
"""
import re
import sys
from pathlib import Path

# engine section name in ENGINES.md -> (store .cc with EncodeEngineParams,
# options header whose struct fields the keys mirror)
ENGINES = {
    "lsm": ("src/lsm/lsm_store.cc", "src/lsm/options.h"),
    "btree": ("src/btree/btree_store.cc", "src/btree/options.h"),
    "alog": ("src/alog/alog_store.cc", "src/alog/options.h"),
    "sharded": ("src/sharded/sharded_store.cc", "src/sharded/options.h"),
    "cached": ("src/cached/cached_store.cc", "src/cached/options.h"),
}

DOC = Path("docs/ENGINES.md")
EXPERIMENTS_DOC = Path("docs/EXPERIMENTS.md")
SIMULATION_DOC = Path("docs/SIMULATION.md")
SSD_CONFIG = Path("src/ssd/config.h")
BENCH_DIR = Path("bench")
README = Path("README.md")
RUN_EXPERIMENT = Path("examples/run_experiment.cpp")


def docs_sections(text: str) -> dict:
    """Maps engine name -> its section body (## `<engine>` ... until next ##)."""
    sections = {}
    matches = list(re.finditer(r"^## `(\w+)`", text, re.MULTILINE))
    for i, m in enumerate(matches):
        end = matches[i + 1].start() if i + 1 < len(matches) else len(text)
        sections[m.group(1)] = text[m.start():end]
    return sections


def table_keys(section: str) -> set:
    """Backticked keys in the first column of markdown table rows."""
    keys = set()
    for line in section.splitlines():
        m = re.match(r"^\|\s*`(\w+)`\s*\|", line)
        if m:
            keys.add(m.group(1))
    return keys


def code_keys(cc_path: Path) -> set:
    """Keys EncodeEngineParams emits: p["key"] = ... assignments."""
    return set(re.findall(r'p\["(\w+)"\]\s*=', cc_path.read_text()))


def header_fields(h_path: Path) -> set:
    """Identifiers declared as option-struct fields (name = default;)."""
    return set(re.findall(r"^\s*[A-Za-z_][\w:<>\s\*]*?\b(\w+)\s*=",
                          h_path.read_text(), re.MULTILINE))


def lint_experiments(failures: list) -> int:
    """EXPERIMENTS.md rows <-> bench/*.cc binaries. Returns rows checked."""
    if not EXPERIMENTS_DOC.exists():
        failures.append(f"{EXPERIMENTS_DOC} is missing")
        return 0
    documented = table_keys(EXPERIMENTS_DOC.read_text())
    binaries = {p.stem for p in BENCH_DIR.glob("*.cc")}
    for name in sorted(documented - binaries):
        failures.append(
            f"experiments: `{name}` documented in {EXPERIMENTS_DOC} but "
            f"bench/{name}.cc does not exist")
    for name in sorted(binaries - documented):
        failures.append(
            f"experiments: bench/{name}.cc has no row in {EXPERIMENTS_DOC}")
    return len(documented)


def ssd_config_fields() -> set:
    """Numeric/bool fields of the structs in src/ssd/config.h (the timing
    and geometry knobs; pointers, strings and nested structs are not
    tunables the doc tables need to list)."""
    return set(re.findall(
        r"^\s*(?:uint64_t|int64_t|double|int|bool|std::array<[^>]*>)\s+(\w+)\s*=",
        SSD_CONFIG.read_text(), re.MULTILINE))


def lint_simulation(failures: list) -> int:
    """SIMULATION.md parameter tables <-> src/ssd/config.h fields.
    Returns params checked."""
    if not SIMULATION_DOC.exists():
        failures.append(f"{SIMULATION_DOC} is missing")
        return 0
    text = SIMULATION_DOC.read_text()
    # Only the parameter tables of the "SSD timing model" section name
    # config fields; later tables (API composition) use other names.
    m = re.search(r"^## The SSD timing model.*?(?=^## (?!#))", text,
                  re.MULTILINE | re.DOTALL)
    if m is None:
        failures.append(
            f"simulation: no '## The SSD timing model' section in "
            f"{SIMULATION_DOC}")
        return 0
    documented = table_keys(m.group(0))
    fields = ssd_config_fields()
    for name in sorted(documented - fields):
        failures.append(
            f"simulation: `{name}` documented in {SIMULATION_DOC} but not "
            f"a field of {SSD_CONFIG}")
    for name in sorted(fields - documented):
        failures.append(
            f"simulation: {SSD_CONFIG} field `{name}` missing from the "
            f"parameter tables in {SIMULATION_DOC}")
    return len(documented)


def lint_readme_flags(failures: list) -> int:
    """README `run_experiment` flag table <-> flags run_experiment.cpp
    parses. Underscore spellings in the code are compatibility aliases
    (e.g. --queue_depth) and are not required in the table. Returns
    flags checked."""
    if not README.exists():
        failures.append(f"{README} is missing")
        return 0
    text = README.read_text()
    m = re.search(r"^### `run_experiment` flags.*?(?=^## )", text,
                  re.MULTILINE | re.DOTALL)
    if m is None:
        failures.append(
            f"readme: no '### `run_experiment` flags' section in {README}")
        return 0
    documented = set(re.findall(r"^\|\s*`--([\w-]+?)[=`]", m.group(0),
                                re.MULTILINE))
    code = set(re.findall(r'starts_with\("--([\w-]+?)[="]',
                          RUN_EXPERIMENT.read_text()))
    code = {f for f in code if "_" not in f}  # aliases need no row
    for name in sorted(documented - code):
        failures.append(
            f"readme: `--{name}` documented in {README} but not parsed by "
            f"{RUN_EXPERIMENT}")
    for name in sorted(code - documented):
        failures.append(
            f"readme: {RUN_EXPERIMENT} parses `--{name}` but the README "
            f"flag table has no row for it")
    return len(documented)


def main() -> int:
    if not DOC.exists():
        print(f"docs lint: {DOC} is missing", file=sys.stderr)
        return 1
    sections = docs_sections(DOC.read_text())
    failures = []
    for engine, (cc, header) in ENGINES.items():
        if engine not in sections:
            failures.append(f"{engine}: no `## `{engine}`` section in {DOC}")
            continue
        documented = table_keys(sections[engine])
        emitted = code_keys(Path(cc))
        fields = header_fields(Path(header))
        if not documented:
            failures.append(f"{engine}: no param table rows found in {DOC}")
            continue
        for key in sorted(documented - emitted):
            failures.append(
                f"{engine}: `{key}` documented in {DOC} but not emitted by "
                f"EncodeEngineParams in {cc}")
        for key in sorted(emitted - documented):
            failures.append(
                f"{engine}: `{key}` emitted by EncodeEngineParams in {cc} "
                f"but missing from the param table in {DOC}")
        for key in sorted(documented & emitted):
            if key not in fields:
                failures.append(
                    f"{engine}: `{key}` has no matching option-struct field "
                    f"in {header}")
    n_benches = lint_experiments(failures)
    n_sim = lint_simulation(failures)
    n_flags = lint_readme_flags(failures)
    if failures:
        print("docs lint FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    total = sum(len(table_keys(sections[e])) for e in ENGINES if e in sections)
    print(f"docs lint OK: {total} engine params checked against "
          f"{len(ENGINES)} option headers, {n_benches} bench rows against "
          f"bench/, {n_sim} SSD timing params against {SSD_CONFIG}, "
          f"{n_flags} README flags against {RUN_EXPERIMENT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
