// Steady-state monitor: the paper's Pitfall-1 guideline as a tool. Runs a
// write workload and reports, window by window, what a naive benchmark
// would have concluded versus what the holistic steady-state detector
// (throughput + WA-A + WA-D stability, or 3x-capacity host writes) says.
//
//   ./build/examples/steady_state_monitor [scale]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "core/steady_state.h"
#include "util/logging.h"

using namespace ptsb;

int main(int argc, char** argv) {
  core::ExperimentConfig config;
  config.scale = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  config.engine = "lsm";
  config.duration_minutes = 150;
  config.window_minutes = 10;
  config.name = "steady-state-monitor";

  std::printf("running the paper's default workload; watching for steady "
              "state...\n\n");
  auto result = core::RunExperiment(config);
  PTSB_CHECK_OK(result.status());

  core::SteadyStateDetector detector;
  core::CusumDetector cusum(/*warmup=*/3, /*k_rel=*/0.05, /*h_rel=*/0.4);
  uint64_t host_cum = 0;
  bool announced = false;
  std::printf("  window  Kops/s   WA-A   WA-D   CUSUM   verdict\n");
  for (const auto& w : result->series.windows) {
    // Approximate cumulative host bytes from the device-write rate.
    host_cum += static_cast<uint64_t>(w.dev_write_mbps * 1e6 * 60 *
                                      config.window_minutes / config.scale);
    const bool cusum_alarm = cusum.Add(w.kv_kops);
    detector.AddWindow(w.kv_kops, w.wa_a_cum, w.wa_d_cum, host_cum,
                       config.ScaledDeviceBytes());
    std::printf("  %5.0f  %7.2f  %5.2f  %5.2f   %-6s  %s\n", w.t_minutes,
                w.kv_kops, w.wa_a_cum, w.wa_d_cum,
                cusum_alarm ? "drift!" : "-",
                detector.IsSteady()
                    ? (detector.SteadyByMetrics() ? "steady (metrics)"
                                                  : "steady (3x capacity)")
                    : "transient");
    if (detector.IsSteady() && !announced) {
      announced = true;
      std::printf("        ^-- measurements before this point are bursty "
                  "(pitfall 1)\n");
    }
  }

  const auto& first = result->series.windows.front();
  std::printf("\nnaive 10-minute benchmark: %.2f Kops/s\n", first.kv_kops);
  std::printf("steady-state answer:       %.2f Kops/s (%.1fx lower)\n",
              result->steady.kv_kops,
              first.kv_kops / result->steady.kv_kops);
  return 0;
}
