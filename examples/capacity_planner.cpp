// Capacity planner: the paper's storage-cost model (Figs. 6c and 8) as a
// small planning tool. Given per-instance measurements of two candidate
// deployments, prints which one needs fewer drives across a grid of
// (dataset size, target throughput) requirements.
//
//   ./build/examples/capacity_planner [dataset_tb] [target_kops]
#include <cstdio>
#include <cstdlib>

#include "core/cost_model.h"

using namespace ptsb;

int main(int argc, char** argv) {
  // Measured operating points in the spirit of the paper's Fig. 5/6:
  // RocksDB: higher throughput, higher space amplification (less dataset
  // per 400 GB drive). WiredTiger: lower throughput, more data per drive.
  core::SystemProfile rocksdb{
      "rocksdb-like",
      {
          {100ull * 1000 * 1000 * 1000, 3.3},  // 100 GB/instance, 3.3 Kops
          {150ull * 1000 * 1000 * 1000, 2.2},
          {200ull * 1000 * 1000 * 1000, 1.8},
          {250ull * 1000 * 1000 * 1000, 1.7},
      }};
  core::SystemProfile wiredtiger{
      "wiredtiger-like",
      {
          {100ull * 1000 * 1000 * 1000, 1.0},
          {200ull * 1000 * 1000 * 1000, 1.0},
          {300ull * 1000 * 1000 * 1000, 1.0},
          {350ull * 1000 * 1000 * 1000, 0.9},
      }};

  if (argc == 3) {
    const double ds_tb = std::atof(argv[1]);
    const double kops = std::atof(argv[2]);
    const uint64_t a = core::DrivesNeeded(rocksdb, ds_tb, kops);
    const uint64_t b = core::DrivesNeeded(wiredtiger, ds_tb, kops);
    std::printf("requirement: %.1f TB at %.1f Kops/s\n", ds_tb, kops);
    std::printf("  %-16s -> %llu drives\n", rocksdb.name.c_str(),
                static_cast<unsigned long long>(a));
    std::printf("  %-16s -> %llu drives\n", wiredtiger.name.c_str(),
                static_cast<unsigned long long>(b));
    std::printf("cheaper: %s\n",
                a == b ? "same" : (a < b ? rocksdb.name : wiredtiger.name)
                                      .c_str());
    return 0;
  }

  const auto heatmap = core::ComputeHeatmap(
      rocksdb, wiredtiger, {1, 2, 3, 4, 5}, {5, 10, 15, 20, 25});
  std::printf("%s\n", heatmap.Render().c_str());
  std::printf(
      "Reading the map (matches the paper's Fig. 6c): the B+Tree engine's\n"
      "lower space amplification wins when deployments are capacity-bound\n"
      "(big datasets, modest throughput); the LSM engine wins when they\n"
      "are throughput-bound.\n\n"
      "Run with arguments for a single decision: capacity_planner 3.5 12\n");
  return 0;
}
