// Generic experiment runner: the full paper pipeline as a CLI. Pick an
// engine, a device profile, an initial state, a dataset size, a workload
// mix — get the paper's metrics, windows and steady-state verdict.
//
//   ./build/run_experiment --engine=btree --state=preconditioned --dataset-frac=0.6 --profile=ssd2 --minutes=120 --scale=400
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.h"
#include "core/report.h"
#include "kv/registry.h"
#include "util/human.h"
#include "util/logging.h"

using namespace ptsb;

namespace {

[[noreturn]] void Usage() {
  kv::RegisterBuiltinEngines();
  std::string engines;
  for (const std::string& name : kv::EngineRegistry::Global().Names()) {
    if (!engines.empty()) engines += ", ";
    engines += name;
  }
  std::printf(
      "flags:\n"
      "  --engine=NAME               a registered engine (default lsm;\n"
      "                              registered: %s)\n",
      engines.c_str());
  std::printf(
      "  --engine-param=KEY=VALUE    engine option override (repeatable)\n"
      "  --profile=ssd1|ssd2|ssd3    (default ssd1)\n"
      "  --state=trimmed|preconditioned\n"
      "  --dataset-frac=F            dataset as fraction of device (0.5)\n"
      "  --partition-frac=F          filesystem partition fraction (1.0)\n"
      "  --value-bytes=N             value size (4000)\n"
      "  --write-frac=F              write fraction of ops (1.0)\n"
      "  --delete-frac=F             deletes among write ops (0.0)\n"
      "  --scan-frac=F               scans among read ops (0.0)\n"
      "  --batch-size=N              puts per write batch (1)\n"
      "  --threads=N                 update-phase worker threads (1; pair\n"
      "                              with --engine=sharded)\n"
      "  --channels=N                SSD flash channels (1; >1 lets async\n"
      "                              submissions overlap in virtual time)\n"
      "  --queue-depth=N             async sub-batch commits in flight for\n"
      "                              --engine=sharded (1 = synchronous)\n"
      "  --pipeline-writes=0|1       issue update-phase writes through\n"
      "                              WriteAsync completion callbacks (0)\n"
      "  --pipeline-depth=N          in-flight pipelined commits per\n"
      "                              worker (4; needs --pipeline-writes)\n"
      "  --read-queue-depth=N        in-flight MultiGet point lookups per\n"
      "                              engine (1 = sequential gets)\n"
      "  --read-batch-size=N         gets grouped into one MultiGet (1)\n"
      "  --scan-while-writing=0|1    run scan ops over snapshots\n"
      "                              (GetSnapshot + ReadOptions), so they\n"
      "                              compose with --threads > 1 (0)\n"
      "  --scan-readahead=N          iterator readahead per scan: prefetch\n"
      "                              N leaves/blocks/values across read\n"
      "                              lanes (1 = none; implies snapshots)\n"
      "  --background-io=0|1         run compaction/checkpoint/GC on a\n"
      "                              background queue off the commit path\n"
      "  --compaction-parallelism=K  split LSM compactions (and alog GC\n"
      "                              reads / btree checkpoint writes) into\n"
      "                              K subranges on K background lanes\n"
      "                              (1; needs --background-io=1)\n"
      "  --bg-slice-us=N             QoS: preempt background backend work\n"
      "                              every N us, so a foreground command\n"
      "                              waits at most one quantum (0 = off)\n"
      "  --bg-rate-mbps=R            QoS: token-bucket admission limit on\n"
      "                              background write bytes (0 = off)\n"
      "  --class-weights=A:B:C       QoS: fgread:fgwrite:bg service\n"
      "                              weights at preemption points\n"
      "                              (empty = strict fg priority)\n"
      "  --cache-bytes=N             read-cache capacity for\n"
      "                              --engine=cached (0 = engine default)\n"
      "  --cache-policy=lru|2q       read-cache policy for --engine=cached\n"
      "  --write-buffer-bytes=N      write-buffer capacity for\n"
      "                              --engine=cached (0 = engine default)\n"
      "  --zipf=THETA                zipfian updates (default: uniform)\n"
      "  --minutes=M                 paper-equivalent duration (210)\n"
      "  --window=M                  averaging window minutes (10)\n"
      "  --scale=N                   size divisor vs the paper (200)\n"
      "  --seed=N\n");
  std::exit(2);
}

double ArgF(const char* arg, const char* name) {
  return std::strtod(arg + std::strlen(name), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig config;
  config.scale = 200;
  config.name = "run_experiment";
  for (int i = 1; i < argc; i++) {
    const std::string a = argv[i];
    if (a.starts_with("--engine=")) {
      config.engine = a.substr(9);
      if (config.engine.empty()) Usage();
    } else if (a.starts_with("--engine-param=")) {
      const std::string kv_pair = a.substr(15);
      const size_t eq = kv_pair.find('=');
      if (eq == std::string::npos || eq == 0) Usage();
      config.engine_params[kv_pair.substr(0, eq)] = kv_pair.substr(eq + 1);
    } else if (a.starts_with("--profile=")) {
      config.profile = ssd::ProfileFromName(a.substr(10));
    } else if (a.starts_with("--state=")) {
      config.initial_state = a.substr(8) == "preconditioned"
                                 ? ssd::InitialState::kPreconditioned
                                 : ssd::InitialState::kTrimmed;
    } else if (a.starts_with("--dataset-frac=")) {
      config.dataset_frac = ArgF(argv[i], "--dataset-frac=");
    } else if (a.starts_with("--partition-frac=")) {
      config.partition_frac = ArgF(argv[i], "--partition-frac=");
    } else if (a.starts_with("--value-bytes=")) {
      config.value_bytes = static_cast<size_t>(ArgF(argv[i], "--value-bytes="));
    } else if (a.starts_with("--write-frac=")) {
      config.write_fraction = ArgF(argv[i], "--write-frac=");
    } else if (a.starts_with("--delete-frac=")) {
      config.delete_fraction = ArgF(argv[i], "--delete-frac=");
    } else if (a.starts_with("--scan-frac=")) {
      config.scan_fraction = ArgF(argv[i], "--scan-frac=");
    } else if (a.starts_with("--batch-size=")) {
      config.batch_size =
          static_cast<size_t>(ArgF(argv[i], "--batch-size="));
    } else if (a.starts_with("--threads=")) {
      config.num_threads = static_cast<size_t>(ArgF(argv[i], "--threads="));
      if (config.num_threads < 1) Usage();
    } else if (a.starts_with("--channels=")) {
      config.channels = static_cast<int>(ArgF(argv[i], "--channels="));
      if (config.channels < 1) Usage();
    } else if (a.starts_with("--queue-depth=")) {
      config.queue_depth =
          static_cast<int>(ArgF(argv[i], "--queue-depth="));
      if (config.queue_depth < 1) Usage();
    } else if (a.starts_with("--queue_depth=")) {  // accepted alias
      config.queue_depth =
          static_cast<int>(ArgF(argv[i], "--queue_depth="));
      if (config.queue_depth < 1) Usage();
    } else if (a.starts_with("--pipeline-writes=")) {
      config.pipeline_writes = ArgF(argv[i], "--pipeline-writes=") != 0;
    } else if (a.starts_with("--pipeline_writes=")) {  // accepted alias
      config.pipeline_writes = ArgF(argv[i], "--pipeline_writes=") != 0;
    } else if (a.starts_with("--pipeline-depth=")) {
      config.pipeline_depth =
          static_cast<int>(ArgF(argv[i], "--pipeline-depth="));
      if (config.pipeline_depth < 1) Usage();
    } else if (a.starts_with("--pipeline_depth=")) {  // accepted alias
      config.pipeline_depth =
          static_cast<int>(ArgF(argv[i], "--pipeline_depth="));
      if (config.pipeline_depth < 1) Usage();
    } else if (a.starts_with("--read-queue-depth=")) {
      config.read_queue_depth =
          static_cast<int>(ArgF(argv[i], "--read-queue-depth="));
      if (config.read_queue_depth < 1) Usage();
    } else if (a.starts_with("--read-batch-size=")) {
      config.read_batch_size =
          static_cast<size_t>(ArgF(argv[i], "--read-batch-size="));
      if (config.read_batch_size < 1) Usage();
    } else if (a.starts_with("--scan-while-writing=")) {
      config.scan_while_writing =
          ArgF(argv[i], "--scan-while-writing=") != 0;
    } else if (a.starts_with("--scan-readahead=")) {
      config.scan_readahead =
          static_cast<int>(ArgF(argv[i], "--scan-readahead="));
      if (config.scan_readahead < 1) Usage();
    } else if (a.starts_with("--background-io=")) {
      config.background_io = ArgF(argv[i], "--background-io=") != 0;
    } else if (a.starts_with("--compaction-parallelism=")) {
      config.compaction_parallelism =
          static_cast<int>(ArgF(argv[i], "--compaction-parallelism="));
      if (config.compaction_parallelism < 1) Usage();
    } else if (a.starts_with("--bg-slice-us=")) {
      config.background_slice_us =
          static_cast<int64_t>(ArgF(argv[i], "--bg-slice-us="));
      if (config.background_slice_us < 0) Usage();
    } else if (a.starts_with("--bg-rate-mbps=")) {
      config.background_rate_mbps = ArgF(argv[i], "--bg-rate-mbps=");
      if (config.background_rate_mbps < 0) Usage();
    } else if (a.starts_with("--class-weights=")) {
      config.class_weights = a.substr(std::strlen("--class-weights="));
      if (config.class_weights.empty()) Usage();
    } else if (a.starts_with("--cache-bytes=")) {
      config.cache_bytes =
          static_cast<uint64_t>(ArgF(argv[i], "--cache-bytes="));
    } else if (a.starts_with("--cache-policy=")) {
      config.cache_policy = a.substr(15);
      if (config.cache_policy.empty()) Usage();
    } else if (a.starts_with("--write-buffer-bytes=")) {
      config.write_buffer_bytes =
          static_cast<uint64_t>(ArgF(argv[i], "--write-buffer-bytes="));
    } else if (a.starts_with("--zipf=")) {
      config.distribution = kv::Distribution::kZipfian;
      config.zipf_theta = ArgF(argv[i], "--zipf=");
    } else if (a.starts_with("--minutes=")) {
      config.duration_minutes = ArgF(argv[i], "--minutes=");
    } else if (a.starts_with("--window=")) {
      config.window_minutes = ArgF(argv[i], "--window=");
    } else if (a.starts_with("--scale=")) {
      config.scale = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (a.starts_with("--seed=")) {
      config.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      Usage();
    }
  }

  // The driver (core::RunExperiment) scales the built-in engines' option
  // defaults itself — including the inner engine behind "sharded" — and
  // applies --engine-param overrides on top.
  std::printf("engine=%s profile=%s state=%s dataset=%.2f of device "
              "(%llu keys), partition=%.2f, scale=1/%llu, threads=%zu, "
              "channels=%d, queue-depth=%d\n\n",
              config.engine.c_str(),
              ssd::ProfileName(config.profile).c_str(),
              ssd::InitialStateName(config.initial_state),
              config.dataset_frac,
              static_cast<unsigned long long>(config.NumKeys()),
              config.partition_frac,
              static_cast<unsigned long long>(config.scale),
              config.num_threads, config.channels, config.queue_depth);

  auto result = core::RunExperiment(config, [](const std::string& line) {
    std::printf("%s\n", line.c_str());
  });
  PTSB_CHECK_OK(result.status());

  if (result->ran_out_of_space) {
    std::printf("\nRAN OUT OF SPACE (peak utilization %.1f%%) — the "
                "paper's Fig. 6 scenario.\n",
                result->peak_disk_utilization * 100);
    return 0;
  }
  std::printf("\n%s\n",
              result->series.ToTable("windows (paper-equivalent minutes)")
                  .c_str());
  std::printf(
      "steady state: %.2f Kops/s  WA-A=%.2f  WA-D=%.2f  e2e-WA=%.2f\n"
      "space amp=%.2f  peak util=%.1f%%  tput CV=%.3f  steady=%s\n"
      "lba untouched=%.1f%%  load took %.1f paper-min\n"
      "op latency (virtual): p50=%.1f us  p99=%.1f us  max=%.1f us\n",
      result->steady.kv_kops, result->steady.wa_a_cum,
      result->steady.wa_d_cum, result->EndToEndWa(), result->final_space_amp,
      result->peak_disk_utilization * 100, result->throughput_cv,
      result->reached_steady_state ? "yes" : "NO (pitfall 1: run longer!)",
      result->lba_fraction_untouched * 100, result->load_minutes,
      result->op_p50_us, result->op_p99_us, result->op_max_us);
  const kv::KvStoreStats& es = result->engine_stats;
  if (es.cache_hits + es.cache_misses + es.buffer_coalesced_bytes > 0) {
    const uint64_t probes = es.cache_hits + es.cache_misses;
    std::printf("cache layer: hits=%llu misses=%llu (%.1f%% hit)  "
                "coalesced=%s  flush batches=%llu\n",
                static_cast<unsigned long long>(es.cache_hits),
                static_cast<unsigned long long>(es.cache_misses),
                probes > 0 ? 100.0 * static_cast<double>(es.cache_hits) /
                                 static_cast<double>(probes)
                           : 0.0,
                HumanBytes(es.buffer_coalesced_bytes).c_str(),
                static_cast<unsigned long long>(es.flush_batches));
  }
  if (es.bloom_negatives + es.bloom_false_positives > 0) {
    // Probes the filters rejected (saved a data-block read) vs admitted
    // in vain (table lacked the key: a wasted block read).
    std::printf("bloom filters: negatives=%llu false positives=%llu "
                "(%.2f%% fp among rejections+fps)\n",
                static_cast<unsigned long long>(es.bloom_negatives),
                static_cast<unsigned long long>(es.bloom_false_positives),
                100.0 * static_cast<double>(es.bloom_false_positives) /
                    static_cast<double>(es.bloom_negatives +
                                        es.bloom_false_positives));
  }
  if (!result->channel_utilization.empty()) {
    std::printf("channel utilization:");
    for (size_t c = 0; c < result->channel_utilization.size(); c++) {
      std::printf(" ch%zu=%.1f%%", c,
                  result->channel_utilization[c] * 100);
    }
    std::printf("\n");
  }
  if (!result->channel_class_utilization.empty()) {
    std::printf("per-class channel busy (");
    for (int k = 0; k < sim::kNumIoClasses; k++) {
      std::printf("%s%s", k > 0 ? "/" : "",
                  sim::IoClassName(static_cast<sim::IoClass>(k)));
    }
    std::printf("):");
    for (size_t c = 0; c < result->channel_class_utilization.size(); c++) {
      const auto& u = result->channel_class_utilization[c];
      std::printf(" ch%zu=", c);
      for (size_t k = 0; k < u.size(); k++) {
        std::printf("%s%.1f", k > 0 ? "/" : "", u[k] * 100);
      }
      std::printf("%%");
    }
    const int64_t fg = result->device_foreground_busy_ns;
    const int64_t bg = result->device_background_busy_ns;
    std::printf("\ndevice busy split: foreground=%.3fs background=%.3fs "
                "(simulated)\n",
                static_cast<double>(fg) / 1e9,
                static_cast<double>(bg) / 1e9);
  }
  if (config.background_slice_us > 0 || config.background_rate_mbps > 0) {
    std::printf("qos: preemptions=%llu bg_throttled=%.3fs wait(",
                static_cast<unsigned long long>(result->device_preemptions),
                static_cast<double>(result->device_bg_throttled_ns) / 1e9);
    for (int k = 0; k < sim::kNumIoClasses; k++) {
      std::printf("%s%s=%.3fs", k > 0 ? " " : "",
                  sim::IoClassName(static_cast<sim::IoClass>(k)),
                  static_cast<double>(
                      result->device_class_wait_ns[static_cast<size_t>(k)]) /
                      1e9);
    }
    std::printf(")\n");
  }
  const std::string csv_path =
      core::WriteResultsFile("run_experiment.csv", result->series.ToCsv());
  if (!csv_path.empty()) std::printf("series written to %s\n", csv_path.c_str());
  return 0;
}
