// SSD inspector: demonstrates the device-level mechanics behind the
// paper's pitfalls — how the initial state (trimmed vs preconditioned) and
// the write pattern drive garbage collection and WA-D.
//
//   ./build/examples/ssd_inspector
#include <cstdio>

#include "sim/clock.h"
#include "ssd/precondition.h"
#include "ssd/ssd_device.h"
#include "util/human.h"
#include "util/logging.h"
#include "util/random.h"

using namespace ptsb;

static ssd::SsdConfig SmallDrive() {
  ssd::SsdConfig c;
  c.geometry.logical_bytes = 1ull << 30;
  c.geometry.hardware_op_frac = 0.12;
  return c;
}

static void Report(const char* what, const ssd::SsdDevice& dev) {
  const auto smart = dev.smart();
  const auto ftl = dev.ftl().GetStats();
  std::printf(
      "%-38s host=%9s nand=%9s WA-D=%4.2f  valid=%7llu pages  "
      "free=%5llu blocks\n",
      what, HumanBytes(smart.host_bytes_written).c_str(),
      HumanBytes(smart.nand_bytes_written).c_str(), smart.WaD(),
      static_cast<unsigned long long>(ftl.valid_pages),
      static_cast<unsigned long long>(ftl.free_blocks));
}

int main() {
  std::printf("Pitfall 3 in miniature: the same random-write workload on "
              "two initial device states.\n\n");
  for (const auto state :
       {ssd::InitialState::kTrimmed, ssd::InitialState::kPreconditioned}) {
    sim::SimClock clock;
    ssd::SsdDevice dev(SmallDrive(), &clock);
    PTSB_CHECK_OK(ssd::ApplyInitialState(&dev, state));
    std::printf("== initial state: %s ==\n", ssd::InitialStateName(state));
    Report("after state preparation", dev);

    // Workload: fill half the LBA space, then update it randomly.
    const uint64_t lbas = dev.num_lbas();
    Rng rng(1);
    for (uint64_t i = 0; i < lbas / 2; i++) {
      PTSB_CHECK_OK(dev.Write(i, 1, nullptr));
    }
    Report("after sequential fill of 50% LBAs", dev);

    // Measure WA-D over the update phase only (the paper's guideline).
    const auto before = dev.smart();
    for (uint64_t i = 0; i < 2 * lbas; i++) {
      PTSB_CHECK_OK(dev.Write(rng.Uniform(lbas / 2), 1, nullptr));
    }
    const auto after = dev.smart();
    const double wa_update =
        static_cast<double>(after.nand_bytes_written -
                            before.nand_bytes_written) /
        static_cast<double>(after.host_bytes_written -
                            before.host_bytes_written);
    Report("after 2x-capacity random updates", dev);
    std::printf("%-38s WA-D=%4.2f\n\n", "update-phase-only measurement:",
                wa_update);
  }
  std::printf(
      "Takeaway: on the trimmed drive the never-written half of the LBA\n"
      "space keeps acting as over-provisioning, so WA-D stays low; on the\n"
      "preconditioned drive the same workload pays full GC cost. This is\n"
      "exactly why WiredTiger's results depend on drive state (Fig. 3/4).\n");
  return 0;
}
