// Quickstart: build the full simulated stack (SSD -> filesystem -> engine),
// open every engine through the registry (kv::OpenStore) — the three
// storage engines plus the sharded concurrent front end — write data with
// batched group commit, stream a range with an iterator, and peek at the
// metrics the paper is about (WA-A at the block layer, WA-D from SMART).
//
//   ./build/quickstart
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "block/iostat.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "kv/registry.h"
#include "kv/write_batch.h"
#include "sim/clock.h"
#include "ssd/precondition.h"
#include "ssd/profiles.h"
#include "ssd/ssd_device.h"
#include "util/human.h"
#include "util/logging.h"

using namespace ptsb;

static void Demo(const char* title, kv::KVStore* store,
                 block::IoStatCollector* iostat, ssd::SsdDevice* ssd) {
  std::printf("--- %s ---\n", title);
  const auto smart0 = ssd->smart();  // measure this demo only

  // Write 20k key-value pairs in batches of 64 (group commit: one WAL /
  // journal record per batch), update a few, delete one.
  kv::WriteBatch batch;
  for (uint64_t i = 0; i < 20'000; i++) {
    batch.Put(kv::MakeKey(i), kv::MakeValue(i, 512));
    if (batch.Count() == 64) {
      PTSB_CHECK_OK(store->Write(batch));
      batch.Clear();
    }
  }
  if (!batch.empty()) PTSB_CHECK_OK(store->Write(batch));
  PTSB_CHECK_OK(store->Put(kv::MakeKey(7), kv::MakeValue(777, 512)));
  PTSB_CHECK_OK(store->Delete(kv::MakeKey(13)));
  PTSB_CHECK_OK(store->Flush());

  // Point reads.
  std::string value;
  PTSB_CHECK_OK(store->Get(kv::MakeKey(7), &value));
  PTSB_CHECK(kv::ValueSeed(value) == 777) << "updated value expected";
  PTSB_CHECK(kv::VerifyValue(value)) << "payload integrity";
  PTSB_CHECK(store->Get(kv::MakeKey(13), &value).IsNotFound());

  // Streaming range read: 5 entries from key 10 (note 13 is deleted).
  std::printf("iterate from %s:\n", kv::MakeKey(10).c_str());
  auto it = store->NewIterator();
  int shown = 0;
  for (it->Seek(kv::MakeKey(10)); it->Valid() && shown < 5; it->Next()) {
    std::printf("  %.*s -> %zu bytes\n",
                static_cast<int>(it->key().size()), it->key().data(),
                it->value().size());
    shown++;
  }
  PTSB_CHECK_OK(it->status());

  // The paper's metrics.
  const auto stats = store->GetStats();
  const auto io = iostat->counters();
  const auto smart = ssd->smart();
  const uint64_t nand = smart.nand_bytes_written - smart0.nand_bytes_written;
  const uint64_t host = smart.host_bytes_written - smart0.host_bytes_written;
  const double wa_a = static_cast<double>(io.write_bytes) /
                      static_cast<double>(stats.user_bytes_written);
  const double wa_d =
      host > 0 ? static_cast<double>(nand) / static_cast<double>(host) : 1.0;
  std::printf("user writes: %s   host writes: %s   NAND writes: %s\n",
              HumanBytes(stats.user_bytes_written).c_str(),
              HumanBytes(io.write_bytes).c_str(), HumanBytes(nand).c_str());
  std::printf("log bytes: %s across %llu batches (group commit)\n",
              HumanBytes(stats.wal_bytes_written).c_str(),
              static_cast<unsigned long long>(stats.user_batches));
  std::printf("WA-A (application) = %.2f   WA-D (device) = %.2f   "
              "end-to-end = %.2f\n",
              wa_a, wa_d, wa_a * wa_d);
  std::printf("disk used by engine: %s\n\n",
              HumanBytes(store->DiskBytesUsed()).c_str());
}

int main() {
  // A small trimmed enterprise-class drive.
  sim::SimClock clock;
  auto config =
      ssd::MakeProfile(ssd::ProfileKind::kSsd1Enterprise, 2ull << 30);
  ssd::SsdDevice ssd(config, &clock);
  block::IoStatCollector iostat(&ssd);
  PTSB_CHECK_OK(ssd::TrimAll(&ssd));
  fs::SimpleFs fs(&iostat, {});

  {
    kv::EngineOptions options;
    options.engine = "lsm";
    options.fs = &fs;
    options.clock = &clock;
    options.params["memtable_bytes"] = std::to_string(2 << 20);
    options.params["l1_target_bytes"] = std::to_string(8 << 20);
    options.params["sst_target_bytes"] = std::to_string(2 << 20);
    auto store = *kv::OpenStore(options);
    Demo("LSM-tree engine (RocksDB-like)", store.get(), &iostat, &ssd);
    PTSB_CHECK_OK(store->Close());
  }
  iostat.ResetCounters();
  {
    kv::EngineOptions options;
    options.engine = "btree";
    options.fs = &fs;
    options.clock = &clock;
    options.params["cache_bytes"] = std::to_string(4 << 20);
    options.params["journal_enabled"] = "1";
    auto store = *kv::OpenStore(options);
    Demo("B+Tree engine (WiredTiger-like)", store.get(), &iostat, &ssd);
    PTSB_CHECK_OK(store->Close());
  }
  iostat.ResetCounters();
  {
    kv::EngineOptions options;
    options.engine = "alog";
    options.fs = &fs;
    options.clock = &clock;
    options.params["segment_bytes"] = std::to_string(2 << 20);
    auto store = *kv::OpenStore(options);
    Demo("append-only log engine (Bitcask-like)", store.get(), &iostat,
         &ssd);
    PTSB_CHECK_OK(store->Close());
  }
  iostat.ResetCounters();
  {
    // The concurrent front end: the same KVStore surface, but writes to
    // different shards (here 4 LSM instances) proceed in parallel. The
    // single-threaded Demo still works unchanged...
    kv::EngineOptions options;
    options.engine = "sharded";
    options.fs = &fs;
    options.clock = &clock;
    options.params["shards"] = "4";
    options.params["inner_engine"] = "lsm";
    options.params["memtable_bytes"] = std::to_string(2 << 20);
    options.params["l1_target_bytes"] = std::to_string(8 << 20);
    options.params["sst_target_bytes"] = std::to_string(2 << 20);
    auto store = *kv::OpenStore(options);
    Demo("sharded front end (4x lsm)", store.get(), &iostat, &ssd);

    // ...and so do 4 writer threads with disjoint key ranges (see
    // run_experiment --threads for the full concurrent workload driver).
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; t++) {
      writers.emplace_back([&store, t] {
        kv::WriteBatch batch;
        for (uint64_t i = 0; i < 2'000; i++) {
          const uint64_t id = 100'000 + static_cast<uint64_t>(t) * 2'000 + i;
          batch.Put(kv::MakeKey(id), kv::MakeValue(id, 512));
          if (batch.Count() == 64) {
            PTSB_CHECK_OK(store->Write(batch));
            batch.Clear();
          }
        }
        if (!batch.empty()) PTSB_CHECK_OK(store->Write(batch));
      });
    }
    for (auto& w : writers) w.join();
    std::string value;
    PTSB_CHECK_OK(store->Get(kv::MakeKey(100'000), &value));
    PTSB_CHECK(kv::VerifyValue(value)) << "concurrent write integrity";
    std::printf("4 concurrent writers added 8000 keys (stats now count "
                "%llu puts)\n\n",
                static_cast<unsigned long long>(
                    store->GetStats().user_puts));
    PTSB_CHECK_OK(store->Close());
  }
  std::printf("simulated time elapsed: %.2f s\n", clock.NowSeconds());
  return 0;
}
