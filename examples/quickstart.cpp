// Quickstart: build the full simulated stack (SSD -> filesystem -> engine),
// write and read some data with both engines, and peek at the metrics the
// paper is about (WA-A at the block layer, WA-D from SMART).
//
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "block/iostat.h"
#include "btree/btree_store.h"
#include "fs/filesystem.h"
#include "kv/kv.h"
#include "lsm/lsm_store.h"
#include "sim/clock.h"
#include "ssd/precondition.h"
#include "ssd/profiles.h"
#include "ssd/ssd_device.h"
#include "util/human.h"
#include "util/logging.h"

using namespace ptsb;

static void Demo(const char* title, kv::KVStore* store,
                 block::IoStatCollector* iostat, ssd::SsdDevice* ssd) {
  std::printf("--- %s ---\n", title);
  const auto smart0 = ssd->smart();  // measure this demo only

  // Write 20k key-value pairs, update a few, delete one.
  for (uint64_t i = 0; i < 20'000; i++) {
    PTSB_CHECK_OK(store->Put(kv::MakeKey(i), kv::MakeValue(i, 512)));
  }
  PTSB_CHECK_OK(store->Put(kv::MakeKey(7), kv::MakeValue(777, 512)));
  PTSB_CHECK_OK(store->Delete(kv::MakeKey(13)));
  PTSB_CHECK_OK(store->Flush());

  // Point reads.
  std::string value;
  PTSB_CHECK_OK(store->Get(kv::MakeKey(7), &value));
  PTSB_CHECK(kv::ValueSeed(value) == 777) << "updated value expected";
  PTSB_CHECK(kv::VerifyValue(value)) << "payload integrity";
  PTSB_CHECK(store->Get(kv::MakeKey(13), &value).IsNotFound());

  // Range scan.
  std::vector<std::pair<std::string, std::string>> rows;
  PTSB_CHECK_OK(store->Scan(kv::MakeKey(10), 5, &rows));
  std::printf("scan from %s:\n", kv::MakeKey(10).c_str());
  for (const auto& [k, v] : rows) {
    std::printf("  %s -> %zu bytes\n", k.c_str(), v.size());
  }

  // The paper's metrics.
  const auto stats = store->GetStats();
  const auto io = iostat->counters();
  const auto smart = ssd->smart();
  const uint64_t nand = smart.nand_bytes_written - smart0.nand_bytes_written;
  const uint64_t host = smart.host_bytes_written - smart0.host_bytes_written;
  const double wa_a = static_cast<double>(io.write_bytes) /
                      static_cast<double>(stats.user_bytes_written);
  const double wa_d =
      host > 0 ? static_cast<double>(nand) / static_cast<double>(host) : 1.0;
  std::printf("user writes: %s   host writes: %s   NAND writes: %s\n",
              HumanBytes(stats.user_bytes_written).c_str(),
              HumanBytes(io.write_bytes).c_str(), HumanBytes(nand).c_str());
  std::printf("WA-A (application) = %.2f   WA-D (device) = %.2f   "
              "end-to-end = %.2f\n",
              wa_a, wa_d, wa_a * wa_d);
  std::printf("disk used by engine: %s\n\n",
              HumanBytes(store->DiskBytesUsed()).c_str());
}

int main() {
  // A small trimmed enterprise-class drive.
  sim::SimClock clock;
  auto config =
      ssd::MakeProfile(ssd::ProfileKind::kSsd1Enterprise, 2ull << 30);
  ssd::SsdDevice ssd(config, &clock);
  block::IoStatCollector iostat(&ssd);
  PTSB_CHECK_OK(ssd::TrimAll(&ssd));
  fs::SimpleFs fs(&iostat, {});

  {
    lsm::LsmOptions options;
    options.memtable_bytes = 2 << 20;
    options.l1_target_bytes = 8 << 20;
    options.sst_target_bytes = 2 << 20;
    options.clock = &clock;
    auto store = *lsm::LsmStore::Open(&fs, options);
    Demo("LSM-tree engine (RocksDB-like)", store.get(), &iostat, &ssd);
    PTSB_CHECK_OK(store->Close());
  }
  iostat.ResetCounters();
  {
    btree::BTreeOptions options;
    options.cache_bytes = 4 << 20;
    options.clock = &clock;
    auto store = *btree::BTreeStore::Open(&fs, options);
    Demo("B+Tree engine (WiredTiger-like)", store.get(), &iostat, &ssd);
    PTSB_CHECK_OK(store->Close());
  }
  std::printf("simulated time elapsed: %.2f s\n", clock.NowSeconds());
  return 0;
}
